// Structured observability: one TraceSink threaded through every stack layer.
//
// The DES engine, the PVM transport, the sciddle RPC middleware, the fault
// layer and ParallelOpal all emit TraceEvents — (virtual time, seq, node,
// category, name, args) — into the thread's current sink.  A MemorySink
// collects them for export as Chrome trace_event JSON (loadable in Perfetto:
// one pid per simulated node, virtual seconds mapped to microsecond ticks)
// or as CSV; tools/trace/summarize_trace.py recomputes the paper's five-way
// phase breakdown from such a trace alone.
//
// Determinism: the DES executes one coroutine at a time in a fixed (t, seq)
// total order, so the sequence of record() calls — and hence the sink's own
// seq numbering — is bit-identical across queue/pool configurations.
// Exports sort on (t, seq), making trace files byte-identical for identical
// runs.
//
// Cost discipline: no sink is installed by default.  Every emission site
// guards on obs::enabled(), a thread-local pointer test, and event payloads
// are PODs with static-string names — the disabled path performs no
// allocation and no virtual call (bench_des_core gates the overhead).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/domains.hpp"

namespace opalsim::obs {

/// Which layer emitted the event.  Doubles as the Perfetto track (tid)
/// within a node's process group.
enum class Cat : std::uint8_t {
  kEngine = 0,  ///< DES engine: schedule/pop/spawn/exit/cancel
  kPvm = 1,     ///< transport: send/deliver/recv/bcast/barrier
  kRpc = 2,     ///< middleware phases: call/compute/return/sync/recovery
  kFault = 3,   ///< injected faults: drop/duplicate/corrupt/stall/kill
  kPhase = 4,   ///< application phase transitions (ParallelOpal)
  kCkpt = 5,    ///< checkpoint/restart: image writes, deferrals, resumes
};

/// Chrome trace_event phase letter.
enum class Ph : char {
  kBegin = 'B',    ///< span open
  kEnd = 'E',      ///< span close
  kInstant = 'i',  ///< point event
};

/// One optional numeric argument.  Names must be string literals (the event
/// never owns storage).
struct Arg {
  const char* name = nullptr;
  double value = 0.0;
};

/// One trace record.  `node` is the simulated node (-1 = engine/global);
/// `seq` is assigned by the sink in record order, which the single-threaded
/// DES makes deterministic.
struct TraceEvent {
  double t = 0.0;  ///< virtual seconds
  std::uint64_t seq = 0;
  std::int32_t node = -1;
  Cat cat = Cat::kEngine;
  Ph ph = Ph::kInstant;
  const char* name = "";
  Arg a0;
  Arg a1;
};

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& e) = 0;
};

/// Explicit no-op sink: recording through it is defined (and free) even
/// though the usual disabled path is "no sink installed at all".
class NullSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override {}
};

/// Collects events in memory for later export.  Assigns seq in arrival
/// order.  Deliberately unsynchronized: one sink belongs to one DES run and
/// is only driven from that run's host thread (the run-isolation audit
/// enforces the ownership; concurrent sweep runs each get their own sink).
class MemorySink final : public TraceSink {
 public:
  void record(const TraceEvent& e) override {
    TraceEvent copy = e;
    copy.seq = next_seq_++;
    events_.push_back(copy);
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept {
    events_.clear();
    next_seq_ = 0;
  }

  /// Next seq this sink will assign.  Checkpointed and restored so a resumed
  /// run's trace tail numbers events exactly as the golden run does (seq
  /// appears in every export row).
  std::uint64_t next_seq() const noexcept { return next_seq_; }
  void set_next_seq(std::uint64_t seq) noexcept { next_seq_ = seq; }

  /// Events sorted by (t, seq) — the deterministic emission order every
  /// export uses.
  std::vector<TraceEvent> sorted_events() const;

  /// Chrome trace_event JSON (Perfetto-loadable): pid = node + 1 with
  /// process_name metadata, tid = category track, ts = virtual µs.
  std::string to_chrome_json() const;

  /// CSV rows: t,seq,node,cat,ph,name,arg0,val0,arg1,val1 (RFC 4180
  /// escaping).
  std::string to_csv() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
};

/// Speculative trace buffer of one optimistic-engine LP.  Unlike MemorySink
/// it assigns no seq numbers — events are provisional until the engine's
/// commit horizon (GVT) passes them, at which point flush_prefix moves them
/// into the committed sink (which assigns its seqs in commit order).  A
/// rollback truncates the uncommitted tail; committed events are never
/// truncated.  The committed stream is therefore exactly as deterministic
/// as the engine's commit order.
class SpecBuffer final : public TraceSink {
 public:
  void record(const TraceEvent& e) override { events_.push_back(e); }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  /// Rollback: discards every event from index `n` on.
  void truncate(std::size_t n) {
    if (n < events_.size()) events_.resize(n);
  }

  /// Commit: records the first `n` events into `committed` and drops them
  /// from the buffer.
  void flush_prefix(std::size_t n, TraceSink& committed) {
    if (n > events_.size()) n = events_.size();
    for (std::size_t i = 0; i < n; ++i) committed.record(events_[i]);
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(n));
  }

 private:
  std::vector<TraceEvent> events_;
};

namespace detail {
inline thread_local TraceSink* tl_sink = nullptr;
}  // namespace detail

/// True when a sink is installed on this thread.  Hot paths test this before
/// assembling event arguments.
inline bool enabled() noexcept { return detail::tl_sink != nullptr; }

/// The thread's current sink, or nullptr when tracing is disabled.
inline TraceSink* current() noexcept { return detail::tl_sink; }

/// RAII: installs `sink` as the thread's current sink, restoring the
/// previous one (usually none) on destruction.
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink& sink) noexcept : prev_(detail::tl_sink) {
    detail::tl_sink = &sink;
  }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;
  ~ScopedSink() { detail::tl_sink = prev_; }

 private:
  TraceSink* prev_;
};

/// Emits an instant event at virtual time `t` on `node`'s track.
inline void instant(Cat cat, const char* name, double t, int node,
                    Arg a0 = {}, Arg a1 = {}) {
  TraceSink* s = detail::tl_sink;
  if (s == nullptr) return;
  TraceEvent e;
  e.t = t;
  e.node = node;
  e.cat = cat;
  e.ph = Ph::kInstant;
  e.name = name;
  e.a0 = a0;
  e.a1 = a1;
  s->record(e);
}

/// Emits a [t0, t1] span as a B/E pair (args ride on the B event).  Spans on
/// one (node, category) track must not partially overlap; the layers only
/// record sequential or properly nested intervals per track.
inline void span(Cat cat, const char* name, double t0, double t1, int node,
                 Arg a0 = {}, Arg a1 = {}) {
  TraceSink* s = detail::tl_sink;
  if (s == nullptr) return;
  TraceEvent b;
  b.t = t0;
  b.node = node;
  b.cat = cat;
  b.ph = Ph::kBegin;
  b.name = name;
  b.a0 = a0;
  b.a1 = a1;
  s->record(b);
  TraceEvent e;
  e.t = t1;
  e.node = node;
  e.cat = cat;
  e.ph = Ph::kEnd;
  e.name = name;
  s->record(e);
}

/// Track (category) name used in exports and by the summarizer.
const char* cat_name(Cat cat) noexcept;

/// OPALSIM_TRACE environment knob (empty string when unset).
HOST_ONLY std::string trace_path_from_env();
/// OPALSIM_METRICS environment knob (empty string when unset).
HOST_ONLY std::string metrics_path_from_env();

/// Disambiguates `path` across multiple traced runs in one process (e.g. a
/// sweep fanned over the thread pool): the first request for a given base
/// path returns it unchanged, the nth gets ".n" spliced in before the
/// extension.  Thread-safe; numbering follows run-start order.
HOST_ONLY std::string unique_output_path(const std::string& path);

/// Writes `content` to `path`; returns false on I/O failure.
HOST_ONLY bool write_file(const std::string& path, const std::string& content);

}  // namespace opalsim::obs
