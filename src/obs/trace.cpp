#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/sync.hpp"

namespace opalsim::obs {

namespace {

// unique_output_path bookkeeping: sweeps fan traced runs over the thread
// pool, so the per-base-path counters are cross-thread shared state.  The
// map is heap-allocated on first use and deliberately leaked — worker
// threads may still splice paths during process teardown after a static
// map would already have been destroyed.
util::Mutex g_path_mutex;
std::map<std::string, int>* g_path_counts GUARDED_BY(g_path_mutex) = nullptr;

/// Shortest round-trippable decimal for a double (JSON/CSV cells).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* cat_name(Cat cat) noexcept {
  switch (cat) {
    case Cat::kEngine: return "engine";
    case Cat::kPvm: return "pvm";
    case Cat::kRpc: return "rpc";
    case Cat::kFault: return "fault";
    case Cat::kPhase: return "phase";
    case Cat::kCkpt: return "ckpt";
  }
  return "?";
}

std::vector<TraceEvent> MemorySink::sorted_events() const {
  std::vector<TraceEvent> out = events_;
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              return a.seq < b.seq;
            });
  return out;
}

std::string MemorySink::to_chrome_json() const {
  const std::vector<TraceEvent> sorted = sorted_events();

  // Track inventory: pid = node + 1 (node -1, the engine's global track
  // group, becomes pid 0); tid = category index.
  std::map<int, std::map<int, const char*>> tracks;  // pid -> tid -> name
  for (const TraceEvent& e : sorted) {
    tracks[e.node + 1][static_cast<int>(e.cat)] = cat_name(e.cat);
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [pid, tids] : tracks) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (pid == 0 ? std::string("engine")
                    : "node " + std::to_string(pid - 1))
       << "\"}}";
    for (const auto& [tid, tname] : tids) {
      sep();
      os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << tname
         << "\"}}";
    }
  }
  for (const TraceEvent& e : sorted) {
    sep();
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << cat_name(e.cat)
       << "\",\"ph\":\"" << static_cast<char>(e.ph)
       << "\",\"ts\":" << fmt(e.t * 1e6) << ",\"pid\":" << (e.node + 1)
       << ",\"tid\":" << static_cast<int>(e.cat);
    if (e.ph == Ph::kInstant) os << ",\"s\":\"t\"";
    os << ",\"args\":{\"seq\":" << e.seq;
    if (e.a0.name != nullptr) {
      os << ",\"" << e.a0.name << "\":" << fmt(e.a0.value);
    }
    if (e.a1.name != nullptr) {
      os << ",\"" << e.a1.name << "\":" << fmt(e.a1.value);
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string MemorySink::to_csv() const {
  std::ostringstream os;
  util::CsvWriter writer(os);
  writer.write_row({"t", "seq", "node", "cat", "ph", "name", "arg0", "val0",
                    "arg1", "val1"});
  for (const TraceEvent& e : sorted_events()) {
    writer.write_row({fmt(e.t), std::to_string(e.seq),
                      std::to_string(e.node), cat_name(e.cat),
                      std::string(1, static_cast<char>(e.ph)), e.name,
                      e.a0.name != nullptr ? e.a0.name : "",
                      e.a0.name != nullptr ? fmt(e.a0.value) : "",
                      e.a1.name != nullptr ? e.a1.name : "",
                      e.a1.name != nullptr ? fmt(e.a1.value) : ""});
  }
  return os.str();
}

std::string trace_path_from_env() {
  return util::env_string("OPALSIM_TRACE").value_or("");
}

std::string metrics_path_from_env() {
  return util::env_string("OPALSIM_METRICS").value_or("");
}

std::string unique_output_path(const std::string& path) {
  util::ScopedLock lock(g_path_mutex);
  if (g_path_counts == nullptr) g_path_counts = new std::map<std::string, int>();
  const int n = ++(*g_path_counts)[path];
  if (n == 1) return path;
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + std::to_string(n);
  }
  return path.substr(0, dot) + "." + std::to_string(n) + path.substr(dot);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os << content;
  return static_cast<bool>(os);
}

}  // namespace opalsim::obs
