#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace opalsim::obs {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  // First bound with value <= bound (upper-inclusive, Prometheus `le`).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double value) {
  ++counts_[bucket_index(value)];
  ++count_;
  sum_ += value;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  util::ScopedLock lk(mutex_);
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  util::ScopedLock lk(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set(const std::string& name, double value) {
  util::ScopedLock lk(mutex_);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  util::ScopedLock lk(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::observe(const std::string& name,
                              std::vector<double> bounds, double value) {
  util::ScopedLock lk(mutex_);
  const auto it = histograms_.find(name);
  Histogram& h =
      it != histograms_.end()
          ? it->second
          : histograms_.emplace(name, Histogram(std::move(bounds)))
                .first->second;
  h.observe(value);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  util::ScopedLock lk(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  util::ScopedLock lk(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::empty() const {
  util::ScopedLock lk(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
  util::ScopedLock lk(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json() const {
  util::ScopedLock lk(mutex_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << fmt(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      os << (i > 0 ? ", " : "") << fmt(h.bounds()[i]);
    }
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      os << (i > 0 ? ", " : "") << h.counts()[i];
    }
    os << "], \"count\": " << h.count() << ", \"sum\": " << fmt(h.sum())
       << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace opalsim::obs
