// MetricsRegistry: named counters, gauges and histograms with a
// deterministic JSON snapshot — the companion to the trace sink for
// aggregate (rather than per-event) observability.  ParallelOpal absorbs
// the engine/queue/pool/network/fault counters into one registry at the end
// of a run; OPALSIM_METRICS=<path> writes the snapshot.
//
// Determinism: names live in std::map (ordered), values are integers or
// doubles printed round-trippably, so two identical runs snapshot to
// byte-identical JSON.
//
// Thread safety: add()/set()/observe()/counter()/gauge()/to_json() are
// internally synchronized (one registry may absorb counters from several
// sweep workers); the lock discipline is annotated and proven under clang
// -Wthread-safety.  The reference-returning histogram() accessor hands out
// a pointer into guarded state — callers that mutate through it must have
// exclusive use of the registry (tests do; concurrent code uses observe()).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace opalsim::obs {

/// Fixed-bound histogram with Prometheus-style upper-inclusive buckets:
/// a value v lands in the first bucket whose bound satisfies v <= bound;
/// values above the last bound land in the implicit +inf overflow bucket.
/// Not internally synchronized — shared instances are guarded by the owning
/// MetricsRegistry.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  /// Index of the bucket `value` falls into (bounds().size() = overflow).
  std::size_t bucket_index(double value) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (created at zero on first touch).
  void add(const std::string& name, std::uint64_t delta = 1)
      EXCLUDES(mutex_);
  std::uint64_t counter(const std::string& name) const EXCLUDES(mutex_);

  /// Sets gauge `name` to `value` (last write wins).
  void set(const std::string& name, double value) EXCLUDES(mutex_);
  double gauge(const std::string& name) const EXCLUDES(mutex_);

  /// Records `value` into histogram `name`, creating it with `bounds` on
  /// first touch (later calls ignore `bounds`).  Safe under concurrent
  /// callers — the whole lookup+observe happens under the registry lock.
  void observe(const std::string& name, std::vector<double> bounds,
               double value) EXCLUDES(mutex_);

  /// Returns the histogram `name`, creating it with `bounds` on first use.
  /// Later calls ignore `bounds` (the first registration pins them).  The
  /// reference escapes the lock: single-threaded use only (see header).
  Histogram& histogram(const std::string& name, std::vector<double> bounds)
      EXCLUDES(mutex_);
  const Histogram* find_histogram(const std::string& name) const
      EXCLUDES(mutex_);

  bool empty() const EXCLUDES(mutex_);
  void clear() EXCLUDES(mutex_);

  /// Deterministic JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  ///  "counts":[...],"count":N,"sum":S}}}
  std::string to_json() const EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::uint64_t> counters_ GUARDED_BY(mutex_);
  std::map<std::string, double> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ GUARDED_BY(mutex_);
};

}  // namespace opalsim::obs
