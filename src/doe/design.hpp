// Systematic experimental design per Jain, "The Art of Computer Systems
// Performance Analysis", ch. 16-19 — the methodology the paper follows for
// its 84-experiment full factorial and the reduced 7*2^(3-1) presentation
// set (§2.3, §2.5).
//
// Two design families:
//  - FullFactorial: arbitrary-level factors, mixed-radix enumeration.
//  - TwoLevelDesign: 2^k full and 2^(k-p) fractional factorials with
//    generators, sign tables, effect estimation, allocation of variation
//    and alias (confounding) analysis.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace opalsim::doe {

/// A factor and its levels (arbitrary count, named).
struct Factor {
  std::string name;
  std::vector<std::string> levels;
};

/// Mixed-radix full factorial over arbitrary-level factors.
class FullFactorial {
 public:
  explicit FullFactorial(std::vector<Factor> factors);

  std::size_t num_runs() const noexcept { return runs_; }
  std::size_t num_factors() const noexcept { return factors_.size(); }
  const std::vector<Factor>& factors() const noexcept { return factors_; }

  /// Level index of each factor for run r (row-major, first factor fastest).
  std::vector<std::size_t> levels_of(std::size_t run) const;

  /// Level name of factor f in run r.
  const std::string& level_name(std::size_t run, std::size_t factor) const;

 private:
  std::vector<Factor> factors_;
  std::size_t runs_ = 1;
};

/// Two-level (+1/-1) full or fractional factorial design.
class TwoLevelDesign {
 public:
  /// 2^k full factorial over the named factors.
  static TwoLevelDesign full(std::vector<std::string> factors);

  /// A generated factor defined as the product (confounding generator) of
  /// base factors, e.g. {"C", {"A","B"}} encodes I = ABC.
  struct Generator {
    std::string factor;
    std::vector<std::string> from;
  };

  /// 2^(k-p) fractional factorial: `base` independent factors plus one
  /// generated factor per generator.
  static TwoLevelDesign fractional(std::vector<std::string> base,
                                   std::vector<Generator> generators);

  std::size_t num_runs() const noexcept { return std::size_t{1} << base_; }
  std::size_t num_factors() const noexcept { return names_.size(); }
  const std::vector<std::string>& factor_names() const noexcept {
    return names_;
  }
  bool is_fractional() const noexcept { return names_.size() > base_; }

  /// Sign (+1/-1) of a factor in a run.
  int sign(std::size_t run, const std::string& factor) const;

  /// Sign of an interaction (product of factor columns).
  int interaction_sign(std::size_t run,
                       std::span<const std::string> factors) const;

  /// Effect coefficient q = (1/N) sum_i sign_i y_i (Jain's notation; the
  /// conventional "effect" is 2q).
  double effect(std::span<const std::string> factors,
                std::span<const double> y) const;

  /// Grand mean q0.
  double mean_response(std::span<const double> y) const;

  /// One row of the allocation-of-variation table.
  struct Allocation {
    std::string label;    ///< e.g. "A", "A*B", or "A (=B*C)" when aliased
    double effect;        ///< q coefficient
    double fraction;      ///< share of total variation (0..1)
  };

  /// Allocation of variation over all distinct (non-aliased-duplicate)
  /// effects up to interactions of `max_order` factors, sorted by
  /// descending fraction.
  std::vector<Allocation> allocation_of_variation(std::span<const double> y,
                                                  int max_order = 2) const;

  /// For fractional designs: the set of factor-subsets (as labels, up to
  /// `max_order`) aliased with the given term.  The term itself is
  /// excluded.  Empty for full designs.
  std::vector<std::string> aliases_of(std::span<const std::string> factors,
                                      int max_order = 2) const;

  /// One effect estimate with its confidence interval from a replicated
  /// design (Jain ch. 18: 2^k r design).
  struct EffectCI {
    std::string label;
    double effect = 0.0;   ///< q coefficient (mean of the column)
    double ci95 = 0.0;     ///< half-width of the 95% CI
    bool significant = false;  ///< CI excludes zero
  };

  /// Effects with confidence intervals from `replications` >= 2 responses
  /// per run.  `y` is run-major: y[run * replications + rep].  The
  /// experimental error is estimated from the within-run spread; the CI
  /// uses Student's t with N(r-1) degrees of freedom.
  std::vector<EffectCI> effects_with_ci(std::span<const double> y,
                                        std::size_t replications,
                                        int max_order = 2) const;

 private:
  TwoLevelDesign() = default;
  std::uint32_t mask_of(const std::string& factor) const;
  std::uint32_t combined_mask(std::span<const std::string> factors) const;

  std::size_t base_ = 0;  ///< number of independent (run-index) bits
  std::vector<std::string> names_;
  std::vector<std::uint32_t> masks_;  ///< per factor: subset of base bits
};

}  // namespace opalsim::doe
