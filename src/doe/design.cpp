#include "doe/design.hpp"

#include <cmath>
#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <stdexcept>

namespace opalsim::doe {

FullFactorial::FullFactorial(std::vector<Factor> factors)
    : factors_(std::move(factors)) {
  if (factors_.empty())
    throw std::invalid_argument("FullFactorial: no factors");
  for (const auto& f : factors_) {
    if (f.levels.empty())
      throw std::invalid_argument("FullFactorial: factor without levels: " +
                                  f.name);
    runs_ *= f.levels.size();
  }
}

std::vector<std::size_t> FullFactorial::levels_of(std::size_t run) const {
  if (run >= runs_) throw std::out_of_range("FullFactorial: run out of range");
  std::vector<std::size_t> idx(factors_.size());
  for (std::size_t f = 0; f < factors_.size(); ++f) {
    idx[f] = run % factors_[f].levels.size();
    run /= factors_[f].levels.size();
  }
  return idx;
}

const std::string& FullFactorial::level_name(std::size_t run,
                                             std::size_t factor) const {
  return factors_.at(factor).levels.at(levels_of(run)[factor]);
}

TwoLevelDesign TwoLevelDesign::full(std::vector<std::string> factors) {
  if (factors.empty() || factors.size() > 20)
    throw std::invalid_argument("TwoLevelDesign: 1..20 factors");
  TwoLevelDesign d;
  d.base_ = factors.size();
  d.names_ = std::move(factors);
  for (std::size_t i = 0; i < d.names_.size(); ++i)
    d.masks_.push_back(std::uint32_t{1} << i);
  return d;
}

TwoLevelDesign TwoLevelDesign::fractional(std::vector<std::string> base,
                                          std::vector<Generator> generators) {
  TwoLevelDesign d = full(std::move(base));
  for (const auto& g : generators) {
    std::uint32_t mask = 0;
    for (const auto& from : g.from) mask ^= d.mask_of(from);
    if (mask == 0)
      throw std::invalid_argument("TwoLevelDesign: degenerate generator for " +
                                  g.factor);
    d.names_.push_back(g.factor);
    d.masks_.push_back(mask);
  }
  return d;
}

std::uint32_t TwoLevelDesign::mask_of(const std::string& factor) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == factor) return masks_[i];
  }
  throw std::invalid_argument("TwoLevelDesign: unknown factor " + factor);
}

std::uint32_t TwoLevelDesign::combined_mask(
    std::span<const std::string> factors) const {
  std::uint32_t m = 0;
  for (const auto& f : factors) m ^= mask_of(f);
  return m;
}

int TwoLevelDesign::sign(std::size_t run, const std::string& factor) const {
  if (run >= num_runs()) throw std::out_of_range("TwoLevelDesign: run");
  // A factor's column is the product of its base columns, where base column
  // b is +1 when run bit b is set: sign = prod (-1)^(1 + bit_b)
  //      = (-1)^(popcount(mask) + popcount(mask & run)).
  const std::uint32_t mask = mask_of(factor);
  const auto parity =
      std::popcount(mask) + std::popcount(mask & static_cast<std::uint32_t>(run));
  return parity % 2 == 0 ? +1 : -1;
}

int TwoLevelDesign::interaction_sign(
    std::size_t run, std::span<const std::string> factors) const {
  if (run >= num_runs()) throw std::out_of_range("TwoLevelDesign: run");
  int s = 1;
  for (const auto& f : factors) s *= sign(run, f);
  return s;
}

double TwoLevelDesign::effect(std::span<const std::string> factors,
                              std::span<const double> y) const {
  if (y.size() != num_runs())
    throw std::invalid_argument("TwoLevelDesign: response size mismatch");
  double sum = 0.0;
  for (std::size_t r = 0; r < num_runs(); ++r)
    sum += interaction_sign(r, factors) * y[r];
  return sum / static_cast<double>(num_runs());
}

double TwoLevelDesign::mean_response(std::span<const double> y) const {
  if (y.size() != num_runs())
    throw std::invalid_argument("TwoLevelDesign: response size mismatch");
  double sum = 0.0;
  for (double v : y) sum += v;
  return sum / static_cast<double>(num_runs());
}

namespace {

// Enumerates all non-empty subsets of {0..n-1} with <= max_order elements.
void for_each_subset(std::size_t n, int max_order,
                     const std::function<void(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> subset;
  // Iterative bitmask enumeration (n <= 24 in practice).
  for (std::uint32_t bits = 1; bits < (std::uint32_t{1} << n); ++bits) {
    if (std::popcount(bits) > max_order) continue;
    subset.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (bits & (std::uint32_t{1} << i)) subset.push_back(i);
    fn(subset);
  }
}

std::string subset_label(const std::vector<std::string>& names,
                         const std::vector<std::size_t>& subset) {
  std::string label;
  for (std::size_t i : subset) {
    if (!label.empty()) label += "*";
    label += names[i];
  }
  return label;
}

}  // namespace

std::vector<TwoLevelDesign::Allocation>
TwoLevelDesign::allocation_of_variation(std::span<const double> y,
                                        int max_order) const {
  const double mean = mean_response(y);
  double sst = 0.0;
  for (double v : y) sst += (v - mean) * (v - mean);

  // Group factor subsets by their combined mask (aliased terms share one).
  // The constant sign of a column is (-1)^(sum of factor-mask popcounts);
  // aliased subsets may differ in it, so we keep the first subset's parity.
  struct Group {
    std::vector<std::string> labels;
    int parity = 0;
  };
  std::map<std::uint32_t, Group> groups;
  for_each_subset(names_.size(), max_order,
                  [&](const std::vector<std::size_t>& subset) {
                    std::vector<std::string> fs;
                    int parity = 0;
                    for (std::size_t i : subset) {
                      fs.push_back(names_[i]);
                      parity += std::popcount(masks_[i]);
                    }
                    const std::uint32_t m = combined_mask(fs);
                    if (m == 0) return;  // aliased with the mean
                    auto& g = groups[m];
                    if (g.labels.empty()) g.parity = parity;
                    g.labels.push_back(subset_label(names_, subset));
                  });

  std::vector<Allocation> out;
  for (const auto& [mask, group] : groups) {
    const auto& labels = group.labels;
    // Effect of the shared column.
    double sum = 0.0;
    for (std::size_t r = 0; r < num_runs(); ++r) {
      const auto bits = group.parity +
                        std::popcount(mask & static_cast<std::uint32_t>(r));
      const int s = bits % 2 == 0 ? +1 : -1;
      sum += s * y[r];
    }
    const double q = sum / static_cast<double>(num_runs());
    Allocation a;
    a.label = labels.front();
    for (std::size_t i = 1; i < labels.size(); ++i)
      a.label += " (=" + labels[i] + ")";
    a.effect = q;
    a.fraction =
        sst > 0.0 ? static_cast<double>(num_runs()) * q * q / sst : 0.0;
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(), [](const Allocation& a,
                                       const Allocation& b) {
    return a.fraction > b.fraction;
  });
  return out;
}

namespace {

/// Two-sided 97.5% Student-t quantile; exact-ish table for small df, z
/// beyond.
double t_975(std::size_t df) {
  static constexpr double table[] = {
      0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262, 2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101, 2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052, 2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return table[df];
  return 1.96;
}

}  // namespace

std::vector<TwoLevelDesign::EffectCI> TwoLevelDesign::effects_with_ci(
    std::span<const double> y, std::size_t replications,
    int max_order) const {
  if (replications < 2)
    throw std::invalid_argument(
        "effects_with_ci: need at least two replications");
  const std::size_t runs = num_runs();
  if (y.size() != runs * replications)
    throw std::invalid_argument("effects_with_ci: response size mismatch");

  // Per-run means and the within-run (experimental) error SSE.
  std::vector<double> means(runs, 0.0);
  double sse = 0.0;
  for (std::size_t run = 0; run < runs; ++run) {
    for (std::size_t rep = 0; rep < replications; ++rep) {
      means[run] += y[run * replications + rep];
    }
    means[run] /= static_cast<double>(replications);
    for (std::size_t rep = 0; rep < replications; ++rep) {
      const double d = y[run * replications + rep] - means[run];
      sse += d * d;
    }
  }
  const std::size_t df = runs * (replications - 1);
  const double s_e2 = sse / static_cast<double>(df);
  // Standard deviation of an effect coefficient: s_e / sqrt(N r).
  const double s_q =
      std::sqrt(s_e2 / static_cast<double>(runs * replications));
  const double half = t_975(df) * s_q;

  std::vector<EffectCI> out;
  for_each_subset(names_.size(), max_order,
                  [&](const std::vector<std::size_t>& subset) {
                    std::vector<std::string> fs;
                    for (std::size_t i : subset) fs.push_back(names_[i]);
                    if (combined_mask(fs) == 0) return;
                    EffectCI e;
                    e.label = subset_label(names_, subset);
                    e.effect = effect(fs, means);
                    e.ci95 = half;
                    e.significant = std::abs(e.effect) > half;
                    out.push_back(std::move(e));
                  });
  std::sort(out.begin(), out.end(),
            [](const EffectCI& a, const EffectCI& b) {
              return std::abs(a.effect) > std::abs(b.effect);
            });
  return out;
}

std::vector<std::string> TwoLevelDesign::aliases_of(
    std::span<const std::string> factors, int max_order) const {
  const std::uint32_t target = combined_mask(factors);
  const std::string self =
      subset_label(names_, [&] {
        std::vector<std::size_t> idx;
        for (const auto& f : factors) {
          for (std::size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == f) idx.push_back(i);
        }
        return idx;
      }());
  std::vector<std::string> out;
  for_each_subset(names_.size(), max_order,
                  [&](const std::vector<std::size_t>& subset) {
                    std::vector<std::string> fs;
                    for (std::size_t i : subset) fs.push_back(names_[i]);
                    if (combined_mask(fs) != target) return;
                    const std::string label = subset_label(names_, subset);
                    if (label != self) out.push_back(label);
                  });
  return out;
}

}  // namespace opalsim::doe
