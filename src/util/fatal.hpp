// Structured fatal-error reporting for library invariant failures.
//
// Library code (sim, pvm, sciddle, ckpt) must not abort() or throw bare
// exceptions on invariant breaks: the crash harness needs to attribute every
// failure to a run, a point in virtual time, and a subsystem — the same
// identity triple the audit layer stamps on its reports.  FatalError carries
// that triple and renders it into what() as
//
//   opalsim fatal [subsystem] run=N vt=T: message
//
// (vt omitted when the failure is not tied to a simulated instant).
//
// FatalError derives std::runtime_error and ConfigError derives
// std::invalid_argument so existing catch sites and EXPECT_THROW expectations
// keep working — the structure is additive.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace opalsim::util {

namespace detail {

inline std::string format_fatal(const std::string& subsystem,
                                const std::string& message,
                                std::uint64_t run_tag, double vtime) {
  std::string out = "opalsim fatal [" + subsystem + "]";
  out += " run=" + std::to_string(run_tag);
  if (vtime >= 0.0) {
    out += " vt=" + std::to_string(vtime);
  }
  out += ": " + message;
  return out;
}

}  // namespace detail

/// Invariant failure inside library code, attributable to a subsystem and
/// (when applicable) a point in virtual time.  Pass vtime < 0 for failures
/// outside simulated time (e.g. during setup or image decode).
class FatalError : public std::runtime_error {
 public:
  FatalError(std::string subsystem, const std::string& message,
             std::uint64_t run_tag, double vtime = -1.0)
      : std::runtime_error(
            detail::format_fatal(subsystem, message, run_tag, vtime)),
        subsystem_(std::move(subsystem)),
        run_tag_(run_tag),
        vtime_(vtime) {}

  const std::string& subsystem() const noexcept { return subsystem_; }
  std::uint64_t run_tag() const noexcept { return run_tag_; }
  /// Virtual time of the failure; negative when not applicable.
  double vtime() const noexcept { return vtime_; }

 private:
  std::string subsystem_;
  std::uint64_t run_tag_ = 0;
  double vtime_ = -1.0;
};

/// Invalid user-supplied configuration (knobs, CLI flags, policy fields).
/// Same structured rendering as FatalError but derives invalid_argument:
/// config mistakes are caller errors, not simulator invariant breaks.
class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string subsystem, const std::string& message)
      : std::invalid_argument(
            detail::format_fatal(subsystem, message, /*run_tag=*/0,
                                 /*vtime=*/-1.0)),
        subsystem_(std::move(subsystem)) {}

  const std::string& subsystem() const noexcept { return subsystem_; }

 private:
  std::string subsystem_;
};

/// Throws FatalError stamped with the calling thread's current run tag.
/// Declared out of line so call sites stay one instruction on the happy path.
[[noreturn]] void fatal(const std::string& subsystem,
                        const std::string& message, double vtime = -1.0);

}  // namespace opalsim::util
