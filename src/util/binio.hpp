// Little-endian binary encode/decode helpers for checkpoint images.
//
// The wire format is explicit and host-independent: fixed-width integers are
// written byte by byte in little-endian order, doubles as the IEEE-754 bit
// pattern of their uint64 image.  BinReader bounds-checks every read and
// throws DecodeError instead of reading past the end, so a truncated or
// corrupted image fails loudly (the checkpoint loader turns that into a
// fall-back to the previous-good image).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace opalsim::util {

/// Thrown by BinReader on any structurally invalid input (read past end,
/// absurd length prefix).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class BinWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_bytes(std::span<const std::uint8_t> b) {
    put_u64(b.size());
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }
  void put_string(const std::string& s) {
    put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  void put_f64_vec(const std::vector<double>& xs) {
    put_u64(xs.size());
    for (const double x : xs) put_f64(x);
  }
  void put_u64_vec(const std::vector<std::uint64_t>& xs) {
    put_u64(xs.size());
    for (const std::uint64_t x : xs) put_u64(x);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class BinReader {
 public:
  explicit BinReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t get_u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  bool get_bool() { return get_u8() != 0; }
  std::vector<std::uint8_t> get_bytes() {
    const std::uint64_t n = checked_count(get_u64(), 1);
    std::vector<std::uint8_t> out(bytes_.begin() + pos_,
                                  bytes_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string get_string() {
    const std::vector<std::uint8_t> b = get_bytes();
    return std::string(b.begin(), b.end());
  }
  std::vector<double> get_f64_vec() {
    const std::uint64_t n = checked_count(get_u64(), 8);
    std::vector<double> xs(n);
    for (auto& x : xs) x = get_f64();
    return xs;
  }
  std::vector<std::uint64_t> get_u64_vec() {
    const std::uint64_t n = checked_count(get_u64(), 8);
    std::vector<std::uint64_t> xs(n);
    for (auto& x : xs) x = get_u64();
    return xs;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (n > bytes_.size() - pos_) {
      throw DecodeError("BinReader: read past end of buffer");
    }
  }
  /// Validates a decoded element count against the bytes actually present
  /// before any allocation, so a corrupted length cannot trigger a huge
  /// allocation or an overflowing size computation.
  std::uint64_t checked_count(std::uint64_t n, std::size_t elem_size) const {
    if (n > (bytes_.size() - pos_) / elem_size) {
      throw DecodeError("BinReader: length prefix exceeds buffer");
    }
    return n;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace opalsim::util
