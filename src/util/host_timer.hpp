// Host wall-clock timer for instrumenting the simulator's own execution
// speed (as opposed to the virtual time the DES engine produces).
#pragma once

#include <chrono>

#include "util/domains.hpp"

namespace opalsim::util {

class HostTimer {
  using Clock = std::chrono::steady_clock;

 public:
  HOST_ONLY HostTimer() : start_(Clock::now()) {}

  HOST_ONLY void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  HOST_ONLY double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace opalsim::util
