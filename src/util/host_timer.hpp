// Host wall-clock timer for instrumenting the simulator's own execution
// speed (as opposed to the virtual time the DES engine produces).
#pragma once

#include <chrono>

namespace opalsim::util {

class HostTimer {
  using Clock = std::chrono::steady_clock;

 public:
  HostTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace opalsim::util
