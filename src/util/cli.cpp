#include "util/cli.hpp"

#include <cstdlib>

namespace opalsim::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is itself an option (or absent):
    // then it's a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[i + 1];
      ++i;
    } else {
      options_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  queried_[key] = true;
  return options_.count(key) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  queried_[key] = true;
  auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key,
                            const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long CliArgs::get_long(const std::string& key, long fallback) const {
  auto v = get(key);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const long out = std::strtol(v->c_str(), &end, 10);
  return end == v->c_str() ? fallback : out;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  return end == v->c_str() ? fallback : out;
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : options_) {
    if (queried_.count(k) == 0) out.push_back(k);
  }
  return out;
}

}  // namespace opalsim::util
