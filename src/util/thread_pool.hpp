// A small fixed-size worker pool for fanning independent DES runs across
// hardware threads.
//
// Every simulation engine in this codebase is self-contained (its own
// sim::Engine, RNG and state), so whole runs parallelize trivially; what
// must NOT change is the output: parallel_for_indexed commits results by
// index, so a sweep's tables and CSVs are byte-identical to a serial run.
// See DESIGN.md, "Host execution engine".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/run_tag.hpp"

namespace opalsim::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; a 1-thread pool still runs jobs on
  /// its worker, but parallel_for_indexed short-circuits it inline).
  explicit ThreadPool(unsigned threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a job.  Jobs must not throw out of the pool; wrap with your
  /// own capture (parallel_for_indexed does).
  void submit(std::function<void()> job);

  /// Number of worker threads a pool gets by default: OPALSIM_THREADS when
  /// set (clamped to >= 1), else the hardware concurrency.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0) .. fn(count-1) across the pool and returns when all have
/// finished.  Callers preallocate a result slot per index and have fn(i)
/// write slot i: iteration results then commit in index order regardless
/// of scheduling.  With a pool of <= 1 thread the loop runs inline (same
/// order, zero overhead).  The first exception thrown by any fn is
/// rethrown here after all iterations finish.
template <typename Fn>
void parallel_for_indexed(ThreadPool& pool, std::size_t count, Fn&& fn) {
  if (count == 0) return;
  // Each index runs in its own RunTagScope (inline path included, so the
  // audit layer's run-isolation invariant holds identically whether a sweep
  // runs pooled or serial): a DES engine created inside fn(i) is tagged to
  // that index and must not be driven by any other index or the caller.
  if (pool.size() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      RunTagScope run_scope;
      fn(i);
    }
    return;
  }
  std::mutex m;
  std::condition_variable cv;
  std::size_t remaining = count;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      std::exception_ptr err;
      try {
        RunTagScope run_scope;
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(m);
      if (err && !first_error) first_error = err;
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace opalsim::util
