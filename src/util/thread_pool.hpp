// A small fixed-size worker pool for fanning independent DES runs across
// hardware threads.
//
// Every simulation engine in this codebase is self-contained (its own
// sim::Engine, RNG and state), so whole runs parallelize trivially; what
// must NOT change is the output: parallel_for_indexed commits results by
// index, so a sweep's tables and CSVs are byte-identical to a serial run.
//
// Index fan-out goes through dispatch_indexed: a chunked work-stealing
// distribution instead of one queued closure per index.  Each participant
// (every worker plus the calling thread) owns a contiguous block of the
// index range and grabs chunks from it with one relaxed fetch_add; when its
// block runs dry it steals chunks from the other blocks.  The hot path
// allocates nothing — the shared job descriptor lives on the dispatcher's
// stack and the per-participant state is a cursor latch cached in the
// worker loop.  See DESIGN.md, "Host execution engine".
//
// Lock discipline (statically proven under clang -Wthread-safety):
//   mutex_          guards the job queue, the stop flag, the active
//                   dispatch pointer and its participant count.
//   dispatch_mutex_ serializes dispatch_indexed callers; always acquired
//                   before mutex_ (never the other way around).
//   blocks_         is intentionally unguarded: the per-block cursor is an
//                   atomic, and the non-atomic `end` is published to
//                   workers by the mutex_ acquire they perform before
//                   reading `active_`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/domains.hpp"
#include "util/run_tag.hpp"
#include "util/sync.hpp"

namespace opalsim::util {

/// Cumulative counters of the chunked dispatch path (bench/metrics
/// introspection).  `chunks` is deterministic in (count, pool size) per
/// dispatch; `steals` depends on scheduling and must never feed anything
/// that pins bytes.
struct DispatchStats {
  std::uint64_t dispatches = 0;  ///< dispatch_indexed fan-outs served
  std::uint64_t chunks = 0;      ///< index chunks handed out
  std::uint64_t steals = 0;      ///< chunks taken from another block
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; a 1-thread pool still runs jobs on
  /// its worker, but parallel_for_indexed short-circuits it inline).
  explicit ThreadPool(unsigned threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a job.  Jobs must not throw out of the pool; wrap with your
  /// own capture (parallel_for_indexed does).
  HOST_ONLY void submit(std::function<void()> job) EXCLUDES(mutex_);

  /// Runs fn(ctx, i) for every i in [0, count) across all workers plus the
  /// calling thread, returning when every index has run.  `fn` must not
  /// throw (parallel_for_indexed wraps exceptions before getting here).
  /// Blocks concurrent dispatchers; do not call from inside a dispatch
  /// (parallel_for_indexed detects that and runs inline instead).
  HOST_ONLY void dispatch_indexed(std::size_t count,
                                  void (*fn)(void*, std::size_t), void* ctx)
      EXCLUDES(dispatch_mutex_, mutex_);

  /// Counters across the pool's lifetime (totals over all dispatches).
  DispatchStats dispatch_stats() const noexcept;

  /// True while the current thread is running indices of a dispatch —
  /// nested fan-out must degrade to an inline loop, not deadlock.
  static bool in_dispatch() noexcept;

  /// Number of worker threads a pool gets by default: OPALSIM_THREADS when
  /// set (clamped to >= 1), else the hardware concurrency.
  HOST_ONLY static unsigned default_threads();

 private:
  /// One dispatch in flight; lives on the dispatcher's stack.
  struct IndexedJob {
    void (*fn)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::uint64_t seq = 0;                  ///< latch against re-entry
    std::atomic<std::size_t> completed{0};  ///< indices fully run
    int participants = 0;  ///< workers inside; guarded by the pool's mutex_
  };
  /// Per-participant index block; `next` is the only contended word on the
  /// hot path, so each block gets its own cache line.
  struct alignas(64) Block {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  void worker_loop(unsigned worker_index) EXCLUDES(mutex_);
  void run_blocks(IndexedJob& job, unsigned my_block) EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar cv_;       ///< wakes workers (queue or dispatch)
  CondVar done_cv_;  ///< wakes the waiting dispatcher
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  IndexedJob* active_ GUARDED_BY(mutex_) = nullptr;  ///< current dispatch
  std::uint64_t dispatch_seq_ GUARDED_BY(mutex_) = 0;
  std::vector<Block> blocks_;  ///< workers + 1 caller block; fixed size
  /// Serializes dispatch_indexed callers; acquired before mutex_.
  Mutex dispatch_mutex_ ACQUIRED_BEFORE(mutex_);
  std::atomic<std::uint64_t> stat_dispatches_{0};
  std::atomic<std::uint64_t> stat_chunks_{0};
  std::atomic<std::uint64_t> stat_steals_{0};
  std::vector<std::thread> workers_;
};

/// Runs fn(0) .. fn(count-1) across the pool and returns when all have
/// finished.  Callers preallocate a result slot per index and have fn(i)
/// write slot i: iteration results then commit in index order regardless
/// of scheduling.  With a pool of <= 1 thread the loop runs inline (same
/// order, zero overhead).  The first exception thrown by any fn is
/// rethrown here after all iterations finish.
template <typename Fn>
HOST_ONLY void parallel_for_indexed(ThreadPool& pool, std::size_t count,
                                    Fn&& fn) {
  if (count == 0) return;
  // Each index runs in its own RunTagScope (inline path included, so the
  // audit layer's run-isolation invariant holds identically whether a sweep
  // runs pooled or serial): a DES engine created inside fn(i) is tagged to
  // that index and must not be driven by any other index or the caller.
  // The tag is one relaxed fetch_add per index — the per-index setup the
  // chunked dispatch cannot cache away without breaking run isolation.
  if (pool.size() <= 1 || count == 1 || ThreadPool::in_dispatch()) {
    for (std::size_t i = 0; i < count; ++i) {
      RunTagScope run_scope;
      fn(i);
    }
    return;
  }
  // The shared state is one stack frame; the dispatch itself allocates
  // nothing (no per-index closures, no queue traffic).
  struct Ctx {
    Fn& fn;
    Mutex m;
    std::exception_ptr first_error GUARDED_BY(m);
  };
  Ctx ctx{fn, {}, nullptr};
  pool.dispatch_indexed(
      count,
      [](void* c, std::size_t i) {
        Ctx& cx = *static_cast<Ctx*>(c);
        try {
          RunTagScope run_scope;
          cx.fn(i);
        } catch (...) {
          ScopedLock lk(cx.m);
          if (!cx.first_error) cx.first_error = std::current_exception();
        }
      },
      &ctx);
  // All workers are done and deregistered: first_error is quiescent, but
  // the analysis still wants the capability for the GUARDED_BY read.
  ScopedLock lk(ctx.m);
  if (ctx.first_error) std::rethrow_exception(ctx.first_error);
}

}  // namespace opalsim::util
