// Determinism-domain tags — compile-time provenance for the bit-identical
// virtual-time contract.
//
// Every committed oracle in this repo (golden traces, sweep CSVs, the
// calibrated model coefficients) pins result bytes, so code that influences
// virtual time or accounting must be a pure function of (config, seed,
// event order).  These attributes make that domain split machine-checkable:
//
//   VT_PURE    virtual-time-affecting: the function participates in event
//              ordering, accounting, model arithmetic, or message payload
//              bytes.  It must not observe host state — no wall clocks, no
//              raw RNG, no environment reads, no HOST_ONLY callees.
//   HOST_ONLY  host-observing: reads wall clocks, environment variables,
//              the filesystem, or drives host threads.  Safe anywhere
//              except inside a VT_PURE function.
//
// Untagged functions are neutral: they may call either domain, and the
// checker says nothing about them.  Tag the chokepoints (engine scheduling,
// queue ordering, pack/unpack, model evaluation; env/clock/file primitives)
// rather than every function — a VT_PURE function calling an untagged
// helper that secretly reads a clock is still caught, because the clock
// *primitives* are tagged (or built into the checker's host-primitive
// list).
//
// Enforcement: tools/lint/check_domains.py rejects HOST_ONLY -> VT_PURE
// call edges (a VT_PURE body calling a HOST_ONLY function or a known host
// primitive).  Under clang the tags are real `annotate` attributes, so the
// libclang backend sees them in the AST; under GCC they expand to nothing
// and the textual backend reads the macro tokens from source instead.
#pragma once

#if defined(__clang__)
#define VT_PURE __attribute__((annotate("opalsim::vt_pure")))
#define HOST_ONLY __attribute__((annotate("opalsim::host_only")))
#else
#define VT_PURE    // no-op off-clang; tools read the token from source
#define HOST_ONLY  // no-op off-clang; tools read the token from source
#endif
