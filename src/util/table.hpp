// Aligned text-table printer used by every bench binary to print the paper's
// tables and figure series in a readable, diffable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace opalsim::util {

/// A simple column-aligned table.  Cells are strings; numeric convenience
/// overloads format with a fixed precision.  Right-aligns cells that parse as
/// numbers, left-aligns everything else.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent `add` calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(double v, int precision = 3);
  Table& add(int v);
  Table& add(long v);
  Table& add(unsigned long v);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Renders with a header rule and two-space column gutters.
  void print(std::ostream& os) const;
  std::string str() const;

  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point, trimming to a
/// compact fixed representation ("0.000123" stays scientific-free only when
/// representable; very small magnitudes switch to scientific).
std::string format_number(double v, int precision = 3);

}  // namespace opalsim::util
