#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace opalsim::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

Summary summarize(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  Summary s;
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.ci95 = rs.ci95_halfwidth();
  return s;
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

FitQuality fit_quality(std::span<const double> measured,
                       std::span<const double> predicted, double eps) {
  assert(measured.size() == predicted.size());
  assert(!measured.empty());
  FitQuality q;
  double se = 0.0;
  double rel_sum = 0.0;
  std::size_t rel_n = 0;
  double meas_mean = 0.0;
  for (double m : measured) meas_mean += m;
  meas_mean /= static_cast<double>(measured.size());
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double err = predicted[i] - measured[i];
    se += err * err;
    ss_res += err * err;
    const double d = measured[i] - meas_mean;
    ss_tot += d * d;
    if (std::abs(measured[i]) >= eps) {
      const double rel = std::abs(err) / std::abs(measured[i]);
      rel_sum += rel;
      rel_n += 1;
      q.max_abs_rel_err = std::max(q.max_abs_rel_err, rel);
    }
  }
  q.rmse = std::sqrt(se / static_cast<double>(measured.size()));
  q.mean_abs_rel_err = rel_n > 0 ? rel_sum / static_cast<double>(rel_n) : 0.0;
  q.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return q;
}

}  // namespace opalsim::util
