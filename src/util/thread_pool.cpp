#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace opalsim::util {

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

unsigned ThreadPool::default_threads() {
  const long v = env_long("OPALSIM_THREADS", 0);
  if (v > 0) return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace opalsim::util
