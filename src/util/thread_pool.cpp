#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace opalsim::util {

namespace {

/// Set while a thread is executing indices of a dispatch_indexed call —
/// both workers and the dispatching caller.  parallel_for_indexed reads it
/// to degrade nested fan-out to an inline loop.
thread_local bool t_in_dispatch = false;

}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : blocks_(static_cast<std::size_t>(std::max(1u, threads)) + 1) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    ScopedLock lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    ScopedLock lk(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::dispatch_indexed(std::size_t count,
                                  void (*fn)(void*, std::size_t), void* ctx) {
  if (count == 0 || fn == nullptr) return;
  // One dispatch owns the block cursors at a time; concurrent dispatchers
  // (pools shared across threads) line up here, not on the hot path.
  ScopedLock dispatch_lk(dispatch_mutex_);
  IndexedJob job;
  job.fn = fn;
  job.ctx = ctx;
  job.count = count;
  const auto nb = static_cast<unsigned>(blocks_.size());
  // ~8 chunks per participant: coarse enough that the cursor fetch_add is
  // noise, fine enough that stealing can even out skewed index costs.
  job.chunk = std::max<std::size_t>(
      1, count / (static_cast<std::size_t>(nb) * 8));
  {
    ScopedLock lk(mutex_);
    job.seq = ++dispatch_seq_;
    // Contiguous even split of [0, count) over workers + caller.  The
    // writes (including the non-atomic `end`) are published to workers by
    // the mutex: they read `active_` under it before touching any block.
    for (unsigned b = 0; b < nb; ++b) {
      blocks_[b].next.store(count * b / nb, std::memory_order_relaxed);
      blocks_[b].end = count * (b + 1) / nb;
    }
    active_ = &job;
  }
  cv_.notify_all();
  // The caller is a participant too: it takes the last block (workers take
  // their own index), so a dispatch on a busy pool still makes progress.
  run_blocks(job, nb - 1);
  {
    ScopedLock lk(mutex_);
    done_cv_.wait(mutex_, [&] {
      mutex_.assert_held();
      return job.completed.load(std::memory_order_acquire) == count &&
             job.participants == 0;
    });
    // No worker can still touch `job` (participants deregister under the
    // mutex before the wait above returns), so the stack frame may die.
    active_ = nullptr;
  }
  stat_dispatches_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::run_blocks(IndexedJob& job, unsigned my_block) {
  t_in_dispatch = true;
  const auto nb = static_cast<unsigned>(blocks_.size());
  std::uint64_t chunks = 0;
  std::uint64_t steals = 0;
  // Own block first, then sweep the others as steal victims.
  for (unsigned v = 0; v < nb; ++v) {
    Block& blk = blocks_[(my_block + v) % nb];
    for (;;) {
      const std::size_t begin =
          blk.next.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= blk.end) break;
      const std::size_t end = std::min(begin + job.chunk, blk.end);
      ++chunks;
      if (v != 0) ++steals;
      for (std::size_t i = begin; i < end; ++i) job.fn(job.ctx, i);
      const std::size_t done =
          job.completed.fetch_add(end - begin, std::memory_order_acq_rel) +
          (end - begin);
      if (done == job.count) {
        // Lock before notifying: the dispatcher checks the predicate under
        // mutex_, so an unlocked notify could land between its check and
        // its sleep and be lost.
        ScopedLock lk(mutex_);
        done_cv_.notify_all();
      }
    }
  }
  t_in_dispatch = false;
  stat_chunks_.fetch_add(chunks, std::memory_order_relaxed);
  stat_steals_.fetch_add(steals, std::memory_order_relaxed);
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t last_seen = 0;  // newest dispatch this worker served
  for (;;) {
    std::function<void()> job;
    IndexedJob* ij = nullptr;
    {
      ScopedLock lk(mutex_);
      cv_.wait(mutex_, [&] {
        mutex_.assert_held();
        return stop_ || !queue_.empty() ||
               (active_ != nullptr && active_->seq != last_seen);
      });
      if (active_ != nullptr && active_->seq != last_seen) {
        // Register as a participant under the mutex: the dispatcher only
        // reclaims the job's stack frame once participants drops to zero.
        ij = active_;
        last_seen = ij->seq;
        ++ij->participants;
      } else if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stop_ set and drained
      }
    }
    if (ij != nullptr) {
      run_blocks(*ij, worker_index);
      ScopedLock lk(mutex_);
      if (--ij->participants == 0 &&
          ij->completed.load(std::memory_order_acquire) == ij->count) {
        done_cv_.notify_all();
      }
      continue;
    }
    job();
  }
}

DispatchStats ThreadPool::dispatch_stats() const noexcept {
  return DispatchStats{
      stat_dispatches_.load(std::memory_order_relaxed),
      stat_chunks_.load(std::memory_order_relaxed),
      stat_steals_.load(std::memory_order_relaxed),
  };
}

bool ThreadPool::in_dispatch() noexcept { return t_in_dispatch; }

unsigned ThreadPool::default_threads() {
  const long v = env_long("OPALSIM_THREADS", 0);
  if (v > 0) return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace opalsim::util
