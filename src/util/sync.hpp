// Annotated synchronization primitives: std::mutex / std::condition_variable
// wrapped so the Clang thread-safety analysis can track them as
// capabilities.  All locking in the tree goes through these (the AST rule
// pack and -Wthread-safety enforce the discipline together); raw std
// primitives carry no annotations and are invisible to the analysis.
//
// The wrappers are zero-cost: every method forwards to the std primitive
// and the annotation macros vanish off-clang.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.hpp"

namespace opalsim::util {

/// Annotated exclusive mutex.  Prefer ScopedLock over manual lock/unlock —
/// the analysis then proves release on every path for free.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Tells the analysis the mutex is held on paths it cannot follow —
  /// condition-variable wait predicates, callbacks invoked under the lock.
  /// No runtime effect.
  void assert_held() const ASSERT_CAPABILITY(this) {}

  /// The underlying handle, for CondVar only.  Locking through it bypasses
  /// the analysis — never do that in application code.
  std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock for util::Mutex (the annotated std::lock_guard analogue).
class SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~ScopedLock() RELEASE() { m_.unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable paired with util::Mutex.  wait() takes the mutex the
/// caller already holds (REQUIRES-checked) and returns with it held again,
/// matching the std::condition_variable contract; internally it adopts the
/// native handle for the duration of the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` holds, releasing `m` while asleep.  The caller
  /// must hold `m`; `pred` runs with `m` held (call m.assert_held() inside
  /// the predicate when it reads GUARDED_BY state, so the analysis knows).
  template <typename Pred>
  void wait(Mutex& m, Pred pred) REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.native(), std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();  // ownership stays with the caller's ScopedLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace opalsim::util
