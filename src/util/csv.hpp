// CSV emission for figure benches (machine-readable companion to the text
// tables).  Quoting follows RFC 4180.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace opalsim::util {

class Table;  // forward

/// Writes rows of string cells as CSV.  Construct with an output stream that
/// outlives the writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: dump a Table (headers + all rows).
  void write_table(const Table& table);

  /// Escapes one cell per RFC 4180 (quotes cells containing , " or newline).
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

/// Writes `table` to `path` as CSV; returns false (and leaves no file
/// guarantees) on I/O failure.
bool write_csv_file(const std::string& path, const Table& table);

}  // namespace opalsim::util
