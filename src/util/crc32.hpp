// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges — the
// integrity check guarding checkpoint images.  Table-driven, byte at a time;
// speed is irrelevant next to the image's fsync, and the classic polynomial
// keeps images verifiable with any external CRC tool.
#pragma once

#include <cstddef>
#include <cstdint>

namespace opalsim::util {

/// CRC-32 of `n` bytes starting at `data`, continuing from `seed` (pass the
/// previous call's result to checksum a buffer in pieces; 0 starts fresh).
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0) noexcept;

}  // namespace opalsim::util
