#include "util/csv.hpp"

#include <fstream>
#include <ostream>

#include "util/table.hpp"

namespace opalsim::util {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_table(const Table& table) {
  write_row(table.headers());
  for (const auto& r : table.rows()) write_row(r);
}

bool write_csv_file(const std::string& path, const Table& table) {
  std::ofstream f(path);
  if (!f) return false;
  CsvWriter w(f);
  w.write_table(table);
  return static_cast<bool>(f);
}

}  // namespace opalsim::util
