// Deterministic pseudo-random number generation for workload synthesis and
// pair-distribution hashing.  All randomness in OpalSim flows through these
// generators so that a fixed seed reproduces a run bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace opalsim::util {

/// SplitMix64 — tiny, high-quality 64-bit mixer.  Used both as a standalone
/// generator for seeding and as a stateless hash (`splitmix64_hash`).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a 64-bit value; suitable for hashing pair indices onto
/// servers (Opal's "pseudo-random strategy").
constexpr std::uint64_t splitmix64_hash(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast general-purpose generator used for molecule synthesis.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Raw generator state, for checkpoint images.  Restoring a saved state
  /// makes the stream continue exactly where the snapshot left it.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace opalsim::util
