#include "util/fatal.hpp"

#include "util/run_tag.hpp"

namespace opalsim::util {

[[noreturn]] void fatal(const std::string& subsystem,
                        const std::string& message, double vtime) {
  throw FatalError(subsystem, message, current_run_tag(), vtime);
}

}  // namespace opalsim::util
