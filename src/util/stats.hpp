// Summary statistics for repeated measurements and model-fit assessment,
// following the methodology of Jain, "The Art of Computer Systems Performance
// Analysis" (the reference the paper's experimental design is based on).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace opalsim::util {

/// Running univariate summary (Welford's algorithm): numerically stable
/// mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Half-width of the ~95% confidence interval of the mean (normal
  /// approximation, z = 1.96); 0 for fewer than two samples.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample span, computed in one pass.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci95 = 0.0;  ///< half-width of the 95% CI of the mean
};

Summary summarize(std::span<const double> xs) noexcept;

/// Median of a sample (copies and partially sorts). Returns 0 for empty input.
double median(std::span<const double> xs);

/// Goodness-of-fit measures between measured and predicted series.
struct FitQuality {
  double mean_abs_rel_err = 0.0;  ///< mean of |pred-meas| / |meas|
  double max_abs_rel_err = 0.0;
  double rmse = 0.0;              ///< root mean squared absolute error
  double r_squared = 0.0;         ///< coefficient of determination
};

/// Computes fit quality; series must be the same nonzero length.
/// Entries with |measured| < eps are excluded from relative errors.
FitQuality fit_quality(std::span<const double> measured,
                       std::span<const double> predicted,
                       double eps = 1e-12);

}  // namespace opalsim::util
