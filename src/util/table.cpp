#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace opalsim::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string format_number(double v, int precision) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  const double mag = std::abs(v);
  char buf[64];
  if (mag != 0.0 && (mag < 1e-4 || mag >= 1e9)) {
    std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  }
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= headers_.size())
    throw std::out_of_range("Table: too many cells in row");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(double v, int precision) {
  return add(format_number(v, precision));
}
Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(long v) { return add(std::to_string(v)); }
Table& Table::add(unsigned long v) { return add(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells, bool align_num) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string cell = c < cells.size() ? cells[c] : std::string();
      const bool right = align_num && looks_numeric(cell);
      const std::size_t pad = widths[c] - cell.size();
      if (c) os << "  ";
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r, true);
}

std::string Table::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace opalsim::util
