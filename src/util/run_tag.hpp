// Host-thread run tagging — the substrate of the audit layer's run-isolation
// invariant (sim/audit.hpp), kept in util so the sweep thread pool can open
// scopes without a layering cycle onto sim.
//
// A "run" is one independent DES execution in a pooled sweep.  Opening a
// RunTagScope stamps the current host thread with a fresh nonzero id; a
// sim::Engine latches the id current at its construction and (when the
// auditor is on) refuses to be driven from any other scope.  Ids are only
// ever compared for equality and never emitted into results, so the atomic
// id source cannot perturb output determinism.
#pragma once

#include <atomic>
#include <cstdint>

namespace opalsim::util {

namespace detail {
inline std::atomic<std::uint64_t> g_next_run_tag{1};
inline thread_local std::uint64_t t_run_tag = 0;
}  // namespace detail

/// The run tag of the calling thread (0 = default scope, outside any sweep).
inline std::uint64_t current_run_tag() noexcept { return detail::t_run_tag; }

/// RAII: re-tags the calling thread with an EXISTING run id.  The parallel
/// engine's LP rounds use this: a round job executes on a pool worker but
/// belongs to the run that owns the engine, so the job adopts the engine's
/// tag instead of opening a fresh scope — the audit layer's run-isolation
/// check then sees the worker as part of the owning run rather than a
/// foreign driver (the single-queue assumption RunTagScope baked in).
class RunTagAdopt {
 public:
  explicit RunTagAdopt(std::uint64_t tag) noexcept : prev_(detail::t_run_tag) {
    detail::t_run_tag = tag;
  }
  ~RunTagAdopt() { detail::t_run_tag = prev_; }
  RunTagAdopt(const RunTagAdopt&) = delete;
  RunTagAdopt& operator=(const RunTagAdopt&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII: tags the calling thread with a fresh run id for one sweep index.
class RunTagScope {
 public:
  RunTagScope() noexcept
      : id_(detail::g_next_run_tag.fetch_add(1, std::memory_order_relaxed)),
        prev_(detail::t_run_tag) {
    detail::t_run_tag = id_;
  }
  ~RunTagScope() { detail::t_run_tag = prev_; }
  RunTagScope(const RunTagScope&) = delete;
  RunTagScope& operator=(const RunTagScope&) = delete;

  std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_;
  std::uint64_t prev_;
};

}  // namespace opalsim::util
