// Clang thread-safety annotation macros — the compile-time half of the
// concurrency contract (the runtime half is TSan + the audit layer).
//
// Under clang, `-Wthread-safety -Werror=thread-safety` (wired on
// automatically in CMakeLists.txt) turns these into a static proof that
// every GUARDED_BY member is only touched with its capability held and that
// every REQUIRES/ACQUIRE/RELEASE contract is honored on every path.  The
// runtime tools only see interleavings that happen; this sees all of them.
// Under GCC (the default local toolchain) every macro expands to nothing,
// so the annotated tree builds identically everywhere.
//
// Use the util::Mutex / util::CondVar / util::ScopedLock wrappers from
// util/sync.hpp rather than annotating raw std primitives — the analysis
// only understands capabilities it can see, and std::mutex carries none.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define OPALSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OPALSIM_THREAD_ANNOTATION(x)  // no-op off-clang
#endif

/// Marks a class as a capability (lockable).  The string names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) OPALSIM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY OPALSIM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define GUARDED_BY(x) OPALSIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define PT_GUARDED_BY(x) OPALSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  OPALSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  OPALSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function-level contracts: the caller must hold / must not hold the
/// capability; the function acquires / releases it.
#define REQUIRES(...) \
  OPALSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  OPALSIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  OPALSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  OPALSIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  OPALSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  OPALSIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  OPALSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) OPALSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held (for code paths
/// the static analysis cannot follow, e.g. condition-variable predicates).
#define ASSERT_CAPABILITY(x) OPALSIM_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the given capability.
#define RETURN_CAPABILITY(x) OPALSIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function.  Every use must
/// carry a justification comment (the AST rule pack checks for one).
#define NO_THREAD_SAFETY_ANALYSIS \
  OPALSIM_THREAD_ANNOTATION(no_thread_safety_analysis)
