#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

namespace opalsim::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

long env_long(const std::string& name, long fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const long v = std::strtol(s->c_str(), &end, 10);
  if (end == s->c_str()) return fallback;
  return v;
}

bool env_flag(const std::string& name) {
  auto s = env_string(name);
  if (!s) return false;
  std::string v = *s;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::optional<std::string> csv_output_dir() {
  if (!env_flag("OPALSIM_CSV")) return std::nullopt;
  const std::string dir =
      env_string("OPALSIM_CSV_DIR").value_or("bench_out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return std::nullopt;
  return dir;
}

}  // namespace opalsim::util
