// Small helpers for environment-variable driven bench configuration.
#pragma once

#include <optional>
#include <string>

#include "util/domains.hpp"

namespace opalsim::util {

/// Returns the value of `name`, or nullopt if unset/empty.
HOST_ONLY std::optional<std::string> env_string(const std::string& name);

/// Returns `name` parsed as long, or `fallback` when unset/unparsable.
HOST_ONLY long env_long(const std::string& name, long fallback);

/// Returns true when `name` is set to a truthy value (1, true, yes, on).
HOST_ONLY bool env_flag(const std::string& name);

/// Directory where benches drop CSV output when OPALSIM_CSV is truthy.
/// Creates the directory on first use.  Returns nullopt when CSV output is
/// disabled.
HOST_ONLY std::optional<std::string> csv_output_dir();

}  // namespace opalsim::util
