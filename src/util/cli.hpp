// Minimal command-line argument parser for the example/tool binaries:
// --key=value and --key value pairs plus boolean --flag switches, with
// typed accessors and defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace opalsim::util {

class CliArgs {
 public:
  /// Parses argv.  Arguments not starting with "--" are positional.
  /// "--key=value" and "--key value" are options; a "--key" followed by
  /// another option (or nothing) is a boolean flag.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  long get_long(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key) const { return has(key); }

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

  /// Keys that were provided but never queried — typo detection for tools.
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace opalsim::util
