// N-party reusable barrier.  The last arriving process releases all waiters
// and continues without suspending; the barrier then re-arms for the next
// generation (matching pvm_barrier semantics).
#pragma once

#include <cassert>
#include <coroutine>
#include <type_traits>
#include <vector>

#include "sim/engine.hpp"

namespace opalsim::sim {

class Barrier {
 public:
  Barrier(Engine& engine, std::size_t parties) noexcept
      : engine_(&engine), parties_(parties) {
    assert(parties > 0);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  std::size_t parties() const noexcept { return parties_; }
  std::size_t arrived() const noexcept { return waiters_.size(); }
  std::uint64_t generation() const noexcept { return generation_; }

  struct ArriveAwaiter {
    Barrier* barrier;
    // The trip decision is made exactly once, at arrival: the last party
    // trips the barrier from await_ready (never suspending).  Re-checking in
    // await_resume would race with arrivals for the next generation.
    bool await_ready() const noexcept {
      if (barrier->waiters_.size() + 1 == barrier->parties_) {
        barrier->trip();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) const {
      barrier->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  static_assert(std::is_trivially_destructible_v<ArriveAwaiter>,
                "awaiters must stay trivially destructible (GCC 12 "
                "double-destruction of awaiter temporaries)");

  /// Awaitable arrive-and-wait.
  ArriveAwaiter arrive() noexcept { return ArriveAwaiter{this}; }

 private:
  void trip() {
    ++generation_;
    for (auto h : waiters_) engine_->schedule_now(h);
    waiters_.clear();
  }

  Engine* engine_;
  std::size_t parties_;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace opalsim::sim
