// One-shot broadcast event: processes await it; set() wakes all waiters
// through the engine queue (deterministic order = wait order).
#pragma once

#include <coroutine>
#include <type_traits>
#include <vector>

#include "sim/engine.hpp"

namespace opalsim::sim {

class Event {
 public:
  explicit Event(Engine& engine) noexcept : engine_(&engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const noexcept { return set_; }

  /// Sets the event; all current and future waiters proceed.
  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_->schedule_now(h);
    waiters_.clear();
  }

  /// Re-arms the event (only meaningful when no waiters are parked).
  void reset() noexcept { set_ = false; }

  struct WaitAwaiter {
    Event* event;
    bool await_ready() const noexcept { return event->set_; }
    void await_suspend(std::coroutine_handle<> h) const {
      event->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  static_assert(std::is_trivially_destructible_v<WaitAwaiter>,
                "awaiters must stay trivially destructible (GCC 12 "
                "double-destruction of awaiter temporaries)");

  WaitAwaiter wait() noexcept { return WaitAwaiter{this}; }

 private:
  Engine* engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace opalsim::sim
