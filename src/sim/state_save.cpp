#include "sim/state_save.hpp"

#include <cstring>

#include "util/fatal.hpp"

namespace opalsim::sim {

void RegionSaver::add_region(void* data, std::size_t size) {
  if (data == nullptr && size != 0) {
    util::fatal("sim", "RegionSaver: null region of nonzero size");
  }
  regions_.push_back(Region{static_cast<std::byte*>(data), size});
  total_ += size;
}

void RegionSaver::save(std::vector<std::byte>& out) {
  const std::size_t base = out.size();
  out.resize(base + total_);
  std::size_t off = base;
  for (const Region& r : regions_) {
    if (r.size > 0) std::memcpy(out.data() + off, r.data, r.size);
    off += r.size;
  }
}

void RegionSaver::restore(const std::byte* data, std::size_t size) {
  if (size != total_) {
    util::fatal("sim", "RegionSaver: image size " + std::to_string(size) +
                           " does not match registered regions (" +
                           std::to_string(total_) + " bytes)");
  }
  std::size_t off = 0;
  for (const Region& r : regions_) {
    if (r.size > 0) std::memcpy(r.data, data + off, r.size);
    off += r.size;
  }
}

Snapshot SnapshotPool::make(const std::vector<std::byte>& bytes) {
  Snapshot s;
  s.size = bytes.size();
  // Zero-size images still need a distinct valid pointer so Snapshot::valid
  // can distinguish "saved empty state" from "no snapshot here".
  s.data = static_cast<std::byte*>(
      arena_->allocate(bytes.empty() ? 1 : bytes.size()));
  if (!bytes.empty()) std::memcpy(s.data, bytes.data(), bytes.size());
  ++saves_;
  bytes_saved_ += bytes.size();
  return s;
}

void SnapshotPool::recycle(Snapshot& snap) noexcept {
  if (snap.data == nullptr) return;
  FramePool::deallocate(snap.data);
  snap.data = nullptr;
  snap.size = 0;
  ++recycled_;
}

}  // namespace opalsim::sim
