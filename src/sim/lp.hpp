// Logical processes: the sharding unit of the parallel DES engine.
//
// The parallel engine (sim/parallel_engine.hpp) splits one simulation into
// N logical processes.  LP 0 is the base LP — it is the serial engine's
// queue/clock/seq, hosts every coroutine process, and always executes on
// the thread that called run(), so coroutine frame pooling, trace sinks and
// audit tagging (all thread-local) behave exactly as in the serial engine.
// LPs 1..N-1 host handler events only (LpHandler — plain function pointer +
// context, no frame), each owning a private EventQueue, a private FramePool
// arena, a local clock and a local event sequence counter.
//
// Synchronization is conservative: rounds advance every LP to a shared
// horizon derived from the minimum network latency (the lookahead), and
// cross-LP sends travel through bounded SPSC InterLpLinks that are drained
// only at round barriers.  A cross-LP post must arrive at least one
// lookahead after the sender's clock (audited: lp-lookahead), which is what
// makes the windows safe without per-link null messages.
//
// Determinism contract: within an LP, events execute in (t, local seq)
// order; link drains ingest messages in sorted (t, src LP, per-link seq)
// order; observables are merged at the observation boundary by
// (t, lp, local seq).  Same-virtual-time effects that cross LPs are applied
// in that deterministic order, which matches the serial engine's (t, global
// seq) order whenever same-time cross-LP effects commute — the contract
// handler workloads must honor (and the serial/parallel equivalence tests
// enforce on every observable byte).
//
// Concurrency discipline (enforced by the lp-shared-state lint rule):
// classes marked OPALSIM_LP_CONFINED are owned by exactly one LP at a time
// (round barriers hand them between threads); every other mutable member in
// these files must be const, atomic, GUARDED_BY a mutex, or live inside the
// reviewed OPALSIM_CROSS_LP_SAFE link type.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "sim/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/pool.hpp"
#include "sim/time.hpp"
#include "util/domains.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace opalsim::sim {

/// Marker: instances are owned by exactly one LP at a time; members need no
/// cross-LP guards.  The lp-shared-state lint rule keys off this token.
#define OPALSIM_LP_CONFINED                                               \
  static_assert(true,                                                     \
                "lp-confined: instances are owned by exactly one LP at a" \
                " time (round barriers hand them between threads)")

/// Marker: internally synchronized type reviewed for concurrent access —
/// only the inter-LP link internals may carry it.
#define OPALSIM_CROSS_LP_SAFE                                            \
  static_assert(true,                                                    \
                "cross-lp-safe: internally synchronized; reviewed for a" \
                " single producer round + barrier-time consumer")

/// The LP whose advance loop is executing on the calling thread (0 outside
/// any LP round — which is also correct for the serial engine and for the
/// base LP, both of which run on the caller thread).
LpId current_lp() noexcept;

/// RAII: marks the calling thread as running `id`'s advance loop.  Engine
/// internals only — LP round jobs, and the optimistic engine's rollback
/// replay, which re-executes handlers outside any advance loop.
class CurrentLpScope {
 public:
  explicit CurrentLpScope(LpId id) noexcept;
  ~CurrentLpScope();
  CurrentLpScope(const CurrentLpScope&) = delete;
  CurrentLpScope& operator=(const CurrentLpScope&) = delete;

 private:
  const LpId prev_;
};

/// Completion latch for one round's LP jobs; also carries the first
/// exception a handler threw on a pool worker back to the caller.  Shared
/// by the conservative round barrier (sim/parallel_engine.cpp) and the
/// optimistic engine's GVT ring (sim/optimistic_engine.cpp).
struct RoundLatch {
  util::Mutex m;
  util::CondVar cv;
  int remaining GUARDED_BY(m) = 0;
  std::exception_ptr first_error GUARDED_BY(m);

  void arm(int n) {
    util::ScopedLock lk(m);
    remaining = n;
  }
  void count_down(std::exception_ptr err) {
    util::ScopedLock lk(m);
    if (err && !first_error) first_error = err;
    if (--remaining == 0) cv.notify_all();
  }
  void wait_and_rethrow() {
    std::exception_ptr err;
    {
      util::ScopedLock lk(m);
      cv.wait(m, [this] {
        m.assert_held();
        return remaining == 0;
      });
      err = first_error;
      first_error = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }
};

/// What a handler event may touch: its LP's clock, local scheduling, and
/// cross-LP posting.  Implemented by Lp (LPs >= 1), by the serial engine's
/// adapter (whole simulation = one LP), and by the parallel engine's base-LP
/// adapter.
class LpRuntime {
 public:
  virtual ~LpRuntime() = default;

  virtual SimTime now() const noexcept = 0;
  virtual LpId lp() const noexcept = 0;
  virtual std::uint32_t lps() const noexcept = 0;
  /// Lookahead of the active engine (0 on the serial engine).
  virtual SimTime lookahead() const noexcept = 0;

  /// Schedules a handler event on the caller's own LP (no lookahead
  /// restriction; t >= now() as everywhere).
  virtual void schedule(SimTime t, LpHandler fn, void* ctx,
                        std::uint64_t payload) = 0;

  /// Posts a handler event to any LP.  Cross-LP posts must satisfy
  /// t >= now() + lookahead() — the conservative-synchronization contract
  /// (audited as lp-lookahead; fatal when the auditor is off).  On the
  /// serial engine every destination collapses into the single queue,
  /// which is exactly what makes it the equivalence oracle.
  virtual void post(LpId dst, SimTime t, LpHandler fn, void* ctx,
                    std::uint64_t payload) = 0;
};

/// One cross-LP message in flight.  `src_seq` is the per-link monotone
/// production counter — the per-channel seq the merge preserves.
///
/// `uid`/`anti` exist for the optimistic engine: every speculative send
/// carries a sender-unique uid, and a rollback re-sends the same uid with
/// `anti` set — the receiver annihilates the pair (audit: anti-pairing).
/// Conservative paths leave both at their defaults.
struct LinkMsg {
  OPALSIM_LP_CONFINED;  // owned by the producer until pushed, by the
                        // barrier-time consumer after drain
  SimTime t = 0.0;
  std::uint64_t src_seq = 0;
  LpHandler fn = nullptr;
  void* ctx = nullptr;
  std::uint64_t payload = 0;
  LpId src = 0;
  std::uint64_t uid = 0;  ///< sender-unique message id (0 = conservative)
  bool anti = false;      ///< anti-message: annihilates the matching uid
};

/// Bounded SPSC inter-LP link: a fixed lock-free ring plus a mutex-guarded
/// overflow spill for bursts beyond the bound.
///
/// Protocol (load-bearing for ordering): exactly one producer — the thread
/// running the source LP's round — pushes during a round; the consumer
/// drains only at round barriers, when all producers are quiescent (the
/// pool's completion latch provides the happens-before edge).  Under that
/// protocol a drain always observes ring entries older than spill entries,
/// so concatenating ring-then-overflow preserves per-link seq order.
class InterLpLink {
 public:
  OPALSIM_CROSS_LP_SAFE;

  static constexpr std::size_t kDefaultCapacity = 256;

  explicit InterLpLink(std::size_t capacity = kDefaultCapacity);

  /// Producer side (the source LP's round thread).  Assigns the per-link
  /// src_seq; spills to the overflow vector when the ring is full.
  void push(LinkMsg m);

  /// Consumer side (the merge thread, at a round barrier).  Appends ring
  /// entries then spilled entries to `out` and empties the link; verifies
  /// the per-link seq strictly increases (audit: channel-fifo).  Returns
  /// the number of messages drained.
  std::size_t drain(std::vector<LinkMsg>& out);

  std::uint64_t pushed() const noexcept {
    return stat_pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t spilled() const noexcept {
    return stat_spilled_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return cap_; }

 private:
  const std::size_t cap_;       ///< ring slots (power of two)
  std::vector<LinkMsg> ring_;   ///< fixed slots indexed by head_/tail_
  std::atomic<std::size_t> head_{0};  ///< consumer cursor
  std::atomic<std::size_t> tail_{0};  ///< producer cursor
  /// Producer-side counters: single producer per round, handed between
  /// rounds through the pool's completion latch (a release/acquire chain),
  /// so plain members are race-free.
  std::uint64_t next_src_seq_ = 0;
  std::uint64_t last_drained_seq_ = 0;  ///< consumer-side FIFO check state
  bool drained_any_ = false;            ///< consumer-side FIFO check state
  std::atomic<std::uint64_t> stat_pushed_{0};
  std::atomic<std::uint64_t> stat_spilled_{0};
  util::Mutex mutex_;
  std::vector<LinkMsg> overflow_ GUARDED_BY(mutex_);
};

/// Routes cross-LP posts; implemented by the parallel engine.
class LpRouter {
 public:
  virtual void route(LpId src, LpId dst, SimTime t, LpHandler fn, void* ctx,
                     std::uint64_t payload) = 0;

 protected:
  ~LpRouter() = default;
};

/// One logical process of index >= 1: private queue, clock, seq counter,
/// frame arena and trace buffer.  Exactly one thread runs an Lp at a time
/// (the round dispatch hands it between pool workers); nothing in here is
/// shared concurrently.
class Lp final : public LpRuntime {
 public:
  OPALSIM_LP_CONFINED;

  Lp(LpId id, std::uint32_t nlps, EventQueueKind queue_kind,
     LpRouter* router);

  // -- LpRuntime -------------------------------------------------------------
  SimTime now() const noexcept override { return now_; }
  LpId lp() const noexcept override { return id_; }
  std::uint32_t lps() const noexcept override { return nlps_; }
  SimTime lookahead() const noexcept override { return lookahead_; }
  VT_PURE void schedule(SimTime t, LpHandler fn, void* ctx,
                        std::uint64_t payload) override;
  VT_PURE void post(LpId dst, SimTime t, LpHandler fn, void* ctx,
                    std::uint64_t payload) override;

  // -- engine side -----------------------------------------------------------
  bool has_events() const noexcept { return !queue_->empty(); }
  /// Time of the next pending event.  Precondition: has_events().
  SimTime next_time() { return queue_->next_time(); }

  /// Published once per round by the dispatching thread, before the round
  /// job is submitted (happens-before via the pool queue).
  void set_lookahead(SimTime la) noexcept { lookahead_ = la; }

  /// Inserts an externally produced event (a drained link message or a
  /// pre-run seed), assigning the next local seq.  Caller guarantees
  /// deterministic call order — that order IS the tie order at equal t.
  VT_PURE void ingest(SimTime t, LpHandler fn, void* ctx,
                      std::uint64_t payload);

  /// Runs events with t <= horizon in (t, local seq) order; new events the
  /// handlers schedule inside the horizon run in the same call.  Stops
  /// early (and returns) as soon as `stop_if` becomes true, when given —
  /// the solo fast path uses this to fall back to windowed rounds on the
  /// first cross-LP post.  Returns the number of events executed.
  VT_PURE std::uint64_t advance_to(SimTime horizon,
                                   const std::atomic<bool>* stop_if = nullptr);

  /// Per-LP trace buffer: the round job installs it as the thread's sink,
  /// and the engine merges it into the caller's sink at the observation
  /// boundary in (t, lp, local seq) order.
  obs::MemorySink& trace_buffer() noexcept { return trace_buffer_; }

  /// Private frame arena for LP-owned state.  Blocks free correctly from
  /// any later round thread: FramePool::deallocate routes by header, and
  /// the round barrier orders the accesses.
  FramePool& arena() noexcept { return arena_; }

  std::uint64_t events_processed() const noexcept { return processed_; }
  std::uint64_t next_local_seq() const noexcept { return next_seq_; }
  const EventQueue& queue() const noexcept { return *queue_; }

  // -- checkpoint hooks ------------------------------------------------------
  void restore_clock(SimTime t) noexcept { now_ = t; }
  void restore_counters(std::uint64_t next_seq,
                        std::uint64_t processed) noexcept {
    next_seq_ = next_seq;
    processed_ = processed;
  }
  /// Clamps the clock forward to t (run_until semantics; never backwards).
  void advance_clock_to(SimTime t) noexcept {
    if (now_ < t) now_ = t;
  }

 private:
  const LpId id_;
  const std::uint32_t nlps_;
  LpRouter* const router_;
  SimTime lookahead_ = 0.0;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::unique_ptr<EventQueue> queue_;
  FramePool arena_;
  obs::MemorySink trace_buffer_;
};

/// Deterministic contiguous block partition of `items` simulated nodes (or
/// any index space) over `lps` logical processes: LP k owns a block of
/// items/lps rounded items, remainders going to the lowest LPs.  Pure
/// arithmetic — the same (items, lps) always yields the same map, which is
/// what lets a serial run replay a parallel partition byte-identically.
class OwnerPartition {
 public:
  OwnerPartition() = default;
  OwnerPartition(std::uint32_t items, std::uint32_t lps) noexcept
      : items_(items), lps_(lps == 0 ? 1 : lps) {}

  std::uint32_t items() const noexcept { return items_; }
  std::uint32_t lps() const noexcept { return lps_; }

  /// First item of LP k's block.
  std::uint32_t first(LpId k) const noexcept {
    const std::uint32_t base = items_ / lps_;
    const std::uint32_t rem = items_ % lps_;
    return k * base + (k < rem ? k : rem);
  }
  /// Number of items LP k owns.
  std::uint32_t count(LpId k) const noexcept {
    const std::uint32_t base = items_ / lps_;
    const std::uint32_t rem = items_ % lps_;
    return base + (k < rem ? 1 : 0);
  }
  /// Owning LP of an item (inverse of first/count).
  LpId owner(std::uint32_t item) const noexcept {
    const std::uint32_t base = items_ / lps_;
    const std::uint32_t rem = items_ % lps_;
    if (base == 0) return item;  // fewer items than LPs: item i -> LP i
    const std::uint32_t big = base + 1;
    if (item < rem * big) return item / big;
    return rem + (item - rem * big) / base;
  }

 private:
  // Written at construction / whole-object assignment only; concurrent
  // access afterwards is read-only.
  // lint:allow(lp-shared-state): set before any LP round can observe it
  std::uint32_t items_ = 0;
  // lint:allow(lp-shared-state): set before any LP round can observe it
  std::uint32_t lps_ = 1;
};

}  // namespace opalsim::sim
