// Predicate-matching mailbox, the substrate for PVM-style recv with
// (source, tag) wildcards.  get(pred) returns the OLDEST stored message
// matching pred, or suspends; put() delivers to the OLDEST parked getter
// whose predicate matches, else stores the message.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <functional>
#include <list>
#include <optional>
#include <utility>

#include "obs/trace.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"

namespace opalsim::sim {

template <typename T>
class Mailbox {
 public:
  using Predicate = std::function<bool(const T&)>;

  /// Single-consumer audit discipline (see sim/audit.hpp).  The owning
  /// layer (e.g. PVM at task spawn) sets the owner id; every consuming call
  /// site reports through note_consume and the auditor flags a second
  /// consumer.  Observation-only: never affects delivery.
  audit::MailboxDiscipline& audit_discipline() noexcept { return audit_; }

  explicit Mailbox(Engine& engine) noexcept : engine_(&engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  std::size_t size() const noexcept { return items_.size(); }

  void put(T value) {
    for (auto it = getters_.begin(); it != getters_.end(); ++it) {
      GetAwaiter* g = *it;
      if (g->pred(value)) {
        getters_.erase(it);
        g->slot.emplace(std::move(value));
        engine_->schedule_now(g->handle);
        return;
      }
    }
    items_.push_back(std::move(value));
  }

  // Carries the predicate and the taken message in an optional<T> slot;
  // the awaiter is the parked getter node itself (getters_ points at it).
  // lint:allow(awaiter-trivial-dtor): owning awaiter by design (see above)
  struct GetAwaiter {
    Mailbox* mailbox;
    Predicate pred;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() {
      auto& items = mailbox->items_;
      for (auto it = items.begin(); it != items.end(); ++it) {
        if (pred(*it)) {
          slot.emplace(std::move(*it));
          items.erase(it);
          return true;
        }
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      mailbox->getters_.push_back(this);
    }
    T await_resume() {
      assert(slot.has_value());
      return std::move(*slot);
    }
  };

  /// Awaitable selective receive.
  GetAwaiter get(Predicate pred) {
    return GetAwaiter{this, std::move(pred), std::nullopt, {}};
  }
  /// Awaitable receive of any message.
  GetAwaiter get_any() {
    return get([](const T&) { return true; });
  }

  /// Removes a parked getter (timeout cancellation).  Compares pointers
  /// only — never dereferences `g` — so callers may pass a pointer whose
  /// awaiter has already been resumed and destroyed.  Returns true when the
  /// getter was still parked (and is now removed).
  bool cancel(const GetAwaiter* g) {
    for (auto it = getters_.begin(); it != getters_.end(); ++it) {
      if (*it == g) {
        getters_.erase(it);
        if (obs::enabled()) {
          obs::instant(obs::Cat::kEngine, "cancel", engine_->now(), -1);
        }
        return true;
      }
    }
    return false;
  }

  /// Read-only view of stored (undelivered) items, oldest first — what a
  /// checkpoint serializes at a quiescent boundary.
  const std::deque<T>& items() const noexcept { return items_; }

  /// Re-stores an item during checkpoint resume: appended directly, never
  /// delivered to a parked getter (restore runs before any getter could
  /// legally match it, and delivery would schedule an event the golden run
  /// never scheduled).
  void restore_item(T value) { items_.push_back(std::move(value)); }

  /// Returns a previously consumed message to the FRONT of the store — the
  /// rollback-side inverse of a consume, so a re-executed receive matches
  /// the identical message again.  The optimistic engine's rollback path
  /// calls this when undoing a speculative receive; the auditor verifies
  /// unconsumes never outnumber consumes and come from the mailbox's owner
  /// (audit: mailbox-unconsume).
  void unconsume(T value, std::uint64_t consumer_id) {
    audit_.note_unconsume(consumer_id, engine_->now());
    items_.push_front(std::move(value));
  }

  /// Non-blocking matching receive.
  std::optional<T> try_get(const Predicate& pred) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (pred(*it)) {
        std::optional<T> v(std::move(*it));
        items_.erase(it);
        return v;
      }
    }
    return std::nullopt;
  }

 private:
  Engine* engine_;
  std::deque<T> items_;
  std::list<GetAwaiter*> getters_;
  audit::MailboxDiscipline audit_;
};

}  // namespace opalsim::sim
