#include "sim/engine.hpp"

#include <string>

#include "obs/trace.hpp"
#include "sim/lp.hpp"
#include "util/domains.hpp"

namespace opalsim::sim {

namespace {

// LpRuntime adapter of the serial engine: the whole simulation is one LP,
// so local scheduling and cross-LP posting both land in the single
// (t, seq)-ordered queue.  That collapse is the point — running a
// partitioned handler workload on the serial engine yields the global
// total order the parallel engine's merge must reproduce.
class SerialLpRuntime final : public LpRuntime {
 public:
  explicit SerialLpRuntime(Engine* e) noexcept : e_(e) {}

  SimTime now() const noexcept override { return e_->now(); }
  LpId lp() const noexcept override { return 0; }
  std::uint32_t lps() const noexcept override { return 1; }
  SimTime lookahead() const noexcept override { return 0.0; }
  void schedule(SimTime t, LpHandler fn, void* ctx,
                std::uint64_t payload) override {
    e_->schedule_handler(t, fn, ctx, payload);
  }
  void post(LpId, SimTime t, LpHandler fn, void* ctx,
            std::uint64_t payload) override {
    e_->schedule_handler(t, fn, ctx, payload);
  }

 private:
  Engine* e_;
};

// Driver coroutine: awaits the user task, records completion/exception in the
// shared state, and wakes joiners through the engine queue.
detail::RootCoro drive(Engine* engine, Task<void> task,
                       std::shared_ptr<detail::ProcessState> state) {
  try {
    co_await std::move(task);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  if (obs::enabled()) {
    obs::instant(obs::Cat::kEngine, "exit", engine->now(), -1);
  }
  if (state->joiner) {
    engine->schedule_now(state->joiner);
    state->joiner = nullptr;
  }
  for (auto h : state->extra_joiners) engine->schedule_now(h);
  state->extra_joiners.clear();
}

}  // namespace

Engine::~Engine() {
  // Destroy any still-suspended root frames.  Frames parked inside primitive
  // wait lists are reachable only from those primitives, which by contract
  // outlive the engine's run and are not used afterwards; destroying the
  // roots unwinds nested Task frames via Task's destructor.
  for (auto& r : roots_) {
    if (r.coro.handle) r.coro.handle.destroy();
  }
}

VT_PURE ProcessHandle Engine::spawn(Task<void> task) {
  // allocate_shared over the thread pool: state + control block are one
  // pooled allocation, reused across spawns via the free list.
  auto state = std::allocate_shared<detail::ProcessState>(
      PoolAllocator<detail::ProcessState>{});
  detail::RootCoro root = drive(this, std::move(task), state);
  root.handle.promise().state = state;
  if (obs::enabled()) {
    obs::instant(obs::Cat::kEngine, "spawn", now_, -1);
  }
  schedule(now_, root.handle);
  roots_.push_back(Root{root, state});
  return ProcessHandle(this, std::move(state));
}

VT_PURE void Engine::schedule(SimTime t, std::coroutine_handle<> h) {
  if (audit::enabled()) {
    audit::check_run(audit_run_tag_, now_);
    if (t < now_) {
      audit::fail(audit::Invariant::kTimeMonotonic,
                  "event scheduled at t=" + std::to_string(t) +
                      " in the virtual past of now=" + std::to_string(now_),
                  now_);
    }
  }
  if (obs::enabled()) {
    obs::instant(obs::Cat::kEngine, "schedule", now_, -1,
                 {"t", t}, {"eseq", static_cast<double>(next_seq_)});
  }
  queue_->push(ScheduledEvent{t, next_seq_++, h});
}

void Engine::audit_pop(SimTime t) {
  audit::check_run(audit_run_tag_, now_);
  // The queue pops in (t, seq) order, so the clock can only move backwards
  // if an event was force-scheduled in the past (caught above) or the
  // ordering itself broke — either way the accounting is invalid.
  if (t < now_) {
    audit::fail(audit::Invariant::kTimeMonotonic,
                "event popped at t=" + std::to_string(t) +
                    " behind the engine clock now=" + std::to_string(now_),
                now_);
  }
}

VT_PURE void Engine::schedule_handler(SimTime t, LpHandler fn, void* ctx,
                                      std::uint64_t payload) {
  if (audit::enabled()) {
    audit::check_run(audit_run_tag_, now_);
    if (t < now_) {
      audit::fail(audit::Invariant::kTimeMonotonic,
                  "handler event scheduled at t=" + std::to_string(t) +
                      " in the virtual past of now=" + std::to_string(now_),
                  now_);
    }
  }
  if (obs::enabled()) {
    obs::instant(obs::Cat::kEngine, "schedule", now_, -1,
                 {"t", t}, {"eseq", static_cast<double>(next_seq_)});
  }
  queue_->push(ScheduledEvent{t, next_seq_++, {}, fn, ctx, payload});
}

VT_PURE void Engine::post_handler(LpId, SimTime t, LpHandler fn, void* ctx,
                                  std::uint64_t payload) {
  schedule_handler(t, fn, ctx, payload);
}

VT_PURE void Engine::run() {
  SerialLpRuntime rt(this);
  while (!queue_->empty()) {
    ScheduledEvent ev = queue_->pop();
    if (audit::enabled()) audit_pop(ev.t);
    now_ = ev.t;
    ++processed_;
    if (obs::enabled()) {
      obs::instant(obs::Cat::kEngine, "pop", ev.t, -1,
                   {"eseq", static_cast<double>(ev.seq)});
    }
    if (ev.fn != nullptr) {
      ev.fn(rt, ev.ctx, ev.payload);
    } else {
      ev.handle.resume();
    }
  }
  rethrow_pending_failure();
}

VT_PURE void Engine::run_until(SimTime t_end) {
  SerialLpRuntime rt(this);
  while (!queue_->empty() && queue_->next_time() <= t_end) {
    ScheduledEvent ev = queue_->pop();
    if (audit::enabled()) audit_pop(ev.t);
    now_ = ev.t;
    ++processed_;
    if (obs::enabled()) {
      obs::instant(obs::Cat::kEngine, "pop", ev.t, -1,
                   {"eseq", static_cast<double>(ev.seq)});
    }
    if (ev.fn != nullptr) {
      ev.fn(rt, ev.ctx, ev.payload);
    } else {
      ev.handle.resume();
    }
  }
  if (now_ < t_end) now_ = t_end;
  rethrow_pending_failure();
}

void Engine::rethrow_pending_failure() {
  for (auto& r : roots_) {
    if (r.state->done && r.state->exception && !r.state->exception_observed) {
      r.state->exception_observed = true;  // rethrow once
      std::rethrow_exception(r.state->exception);
    }
  }
}

}  // namespace opalsim::sim
