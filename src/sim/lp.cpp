#include "sim/lp.hpp"

#include <string>

#include "util/fatal.hpp"

namespace opalsim::sim {

namespace {

thread_local LpId t_current_lp = 0;

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

LpId current_lp() noexcept { return t_current_lp; }

CurrentLpScope::CurrentLpScope(LpId id) noexcept : prev_(t_current_lp) {
  t_current_lp = id;
}

CurrentLpScope::~CurrentLpScope() { t_current_lp = prev_; }

// ---------------------------------------------------------------------------
// InterLpLink

InterLpLink::InterLpLink(std::size_t capacity)
    : cap_(round_up_pow2(capacity < 2 ? 2 : capacity)), ring_(cap_) {}

void InterLpLink::push(LinkMsg m) {
  m.src_seq = next_src_seq_++;
  stat_pushed_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t head = head_.load(std::memory_order_acquire);
  if (tail - head < cap_) {
    ring_[tail & (cap_ - 1)] = m;
    tail_.store(tail + 1, std::memory_order_release);
    return;
  }
  // Ring full: spill.  Within a round the ring stays full (drains happen
  // only at barriers), so every subsequent message of the round spills too
  // and ring-then-overflow concatenation preserves src_seq order.
  util::ScopedLock lk(mutex_);
  overflow_.push_back(m);
  stat_spilled_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t InterLpLink::drain(std::vector<LinkMsg>& out) {
  const std::size_t before = out.size();
  const std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  for (std::size_t i = head; i != tail; ++i) {
    out.push_back(ring_[i & (cap_ - 1)]);
  }
  head_.store(tail, std::memory_order_release);
  {
    util::ScopedLock lk(mutex_);
    for (const LinkMsg& m : overflow_) out.push_back(m);
    overflow_.clear();
  }
  const std::size_t drained = out.size() - before;
  if (audit::enabled() && drained > 0) {
    // Per-channel FIFO: production seq must strictly increase across the
    // whole drained batch and across drains.
    std::uint64_t prev = last_drained_seq_;
    bool first = !drained_any_;
    for (std::size_t i = before; i < out.size(); ++i) {
      const std::uint64_t s = out[i].src_seq;
      if (!first && s <= prev) {
        audit::fail(audit::Invariant::kChannelFifo,
                    "inter-LP link seq went backwards: " +
                        std::to_string(s) + " after " + std::to_string(prev),
                    out[i].t);
      }
      prev = s;
      first = false;
    }
    last_drained_seq_ = prev;
    drained_any_ = true;
  }
  return drained;
}

// ---------------------------------------------------------------------------
// Lp

Lp::Lp(LpId id, std::uint32_t nlps, EventQueueKind queue_kind,
       LpRouter* router)
    : id_(id), nlps_(nlps), router_(router),
      queue_(make_event_queue(queue_kind)) {}

VT_PURE void Lp::schedule(SimTime t, LpHandler fn, void* ctx,
                          std::uint64_t payload) {
  if (audit::enabled() && t < now_) {
    audit::fail(audit::Invariant::kTimeMonotonic,
                "LP " + std::to_string(id_) + " event scheduled at t=" +
                    std::to_string(t) + " in the virtual past of now=" +
                    std::to_string(now_),
                now_);
  }
  if (obs::enabled()) {
    obs::instant(obs::Cat::kEngine, "schedule", now_, -1, {"t", t},
                 {"lp", static_cast<double>(id_)});
  }
  queue_->push(ScheduledEvent{t, next_seq_++, {}, fn, ctx, payload});
}

VT_PURE void Lp::post(LpId dst, SimTime t, LpHandler fn, void* ctx,
                      std::uint64_t payload) {
  if (dst == id_) {
    schedule(t, fn, ctx, payload);
    return;
  }
  if (t < now_ + lookahead_) {
    if (audit::enabled()) {
      audit::fail(audit::Invariant::kLpLookahead,
                  "cross-LP post " + std::to_string(id_) + "->" +
                      std::to_string(dst) + " at t=" + std::to_string(t) +
                      " violates lookahead " + std::to_string(lookahead_) +
                      " from now=" + std::to_string(now_),
                  now_);
      return;  // only reached under ViolationCapture
    }
    util::fatal("sim", "cross-LP post violates the lookahead contract (t=" +
                           std::to_string(t) + ", now=" +
                           std::to_string(now_) + ", lookahead=" +
                           std::to_string(lookahead_) + ")");
  }
  router_->route(id_, dst, t, fn, ctx, payload);
}

VT_PURE void Lp::ingest(SimTime t, LpHandler fn, void* ctx,
                        std::uint64_t payload) {
  if (audit::enabled() && t < now_) {
    audit::fail(audit::Invariant::kTimeMonotonic,
                "LP " + std::to_string(id_) + " ingested a message at t=" +
                    std::to_string(t) + " behind its clock now=" +
                    std::to_string(now_),
                now_);
  }
  if (obs::enabled()) {
    obs::instant(obs::Cat::kEngine, "ingest", t, -1,
                 {"lp", static_cast<double>(id_)},
                 {"eseq", static_cast<double>(next_seq_)});
  }
  queue_->push(ScheduledEvent{t, next_seq_++, {}, fn, ctx, payload});
}

VT_PURE std::uint64_t Lp::advance_to(SimTime horizon,
                                     const std::atomic<bool>* stop_if) {
  CurrentLpScope scope(id_);
  std::uint64_t ran = 0;
  while (!queue_->empty() && queue_->next_time() <= horizon) {
    ScheduledEvent ev = queue_->pop();
    if (audit::enabled() && ev.t < now_) {
      audit::fail(audit::Invariant::kTimeMonotonic,
                  "LP " + std::to_string(id_) + " popped an event at t=" +
                      std::to_string(ev.t) + " behind its clock now=" +
                      std::to_string(now_),
                  now_);
    }
    now_ = ev.t;
    ++processed_;
    ++ran;
    if (obs::enabled()) {
      obs::instant(obs::Cat::kEngine, "pop", ev.t, -1,
                   {"eseq", static_cast<double>(ev.seq)},
                   {"lp", static_cast<double>(id_)});
    }
    if (ev.fn == nullptr) {
      util::fatal("sim",
                  "LP " + std::to_string(id_) +
                      " popped a coroutine event; coroutines are pinned to "
                      "the base LP");
    }
    ev.fn(*this, ev.ctx, ev.payload);
    if (stop_if != nullptr && stop_if->load(std::memory_order_relaxed)) break;
  }
  return ran;
}

}  // namespace opalsim::sim
