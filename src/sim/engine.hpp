// Discrete-event simulation engine.
//
// The Engine owns a time-ordered event queue of suspended coroutine handles.
// Simulation processes are spawned from Task<void> coroutines; they advance
// virtual time exclusively by awaiting engine primitives (delay, Event,
// Queue, Mailbox, Resource, Barrier).  Exactly one coroutine runs at a time,
// so no synchronization is required, and ties in virtual time are broken by a
// monotone sequence number — runs are bit-for-bit deterministic.
//
// Hot-path machinery (see DESIGN.md, "DES core internals"):
//  - the event queue is pluggable (sim/event_queue.hpp): a ladder-style
//    queue by default, the seed binary heap as reference — both pop the
//    identical (t, seq) total order;
//  - per-spawn ProcessState blocks and every coroutine frame come from the
//    thread's FramePool slab arena (sim/pool.hpp), so steady-state spawning
//    and event dispatch perform no global-heap allocation.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/pool.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/domains.hpp"

namespace opalsim::sim {

class Engine;

namespace detail {

/// Shared completion state of a spawned process.  The first joiner parks in
/// the inline slot (a process is almost always joined at most once);
/// additional joiners spill into the vector.
struct ProcessState {
  bool done = false;
  bool exception_observed = false;
  std::exception_ptr exception;
  std::coroutine_handle<> joiner;
  std::vector<std::coroutine_handle<>> extra_joiners;
};

/// Eager root coroutine that drives a Task<void> and records completion.
/// The frame is pool-allocated (PooledFrame) like every Task frame.
struct RootCoro {
  struct promise_type : PooledFrame {
    std::shared_ptr<ProcessState> state;
    RootCoro get_return_object() noexcept {
      return RootCoro{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_always final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept {
      // The driver body already catches; this only fires if bookkeeping
      // itself throws, which we treat as fatal.
      std::terminate();
    }
  };
  std::coroutine_handle<promise_type> handle;
};

}  // namespace detail

/// Handle to a spawned process; copyable.  Await join() to block until the
/// process completes (rethrows the process's exception, if any).
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool valid() const noexcept { return static_cast<bool>(state_); }
  bool done() const noexcept { return state_ && state_->done; }

  // Owns the ProcessState shared_ptr so a joined process outlives its
  // handle; only awaited via co_await join(), never a temporary.
  // lint:allow(awaiter-trivial-dtor): owning awaiter by design (see above)
  struct JoinAwaiter {
    Engine* engine;
    std::shared_ptr<detail::ProcessState> state;
    bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> h) const {
      if (!state->joiner) {
        state->joiner = h;
      } else {
        state->extra_joiners.push_back(h);
      }
    }
    void await_resume() const {
      if (state->exception) {
        state->exception_observed = true;
        std::rethrow_exception(state->exception);
      }
    }
  };

  /// Awaitable: resumes when the process has finished.
  JoinAwaiter join() const;

 private:
  friend class Engine;
  ProcessHandle(Engine* e, std::shared_ptr<detail::ProcessState> s)
      : engine_(e), state_(std::move(s)) {}
  Engine* engine_ = nullptr;
  std::shared_ptr<detail::ProcessState> state_;
};

/// Snapshot of the engine's hot-path counters (see bench_des_core).
struct EngineCounters {
  std::uint64_t events_processed = 0;
  const char* queue_name = "";
  EventQueueStats queue;
  FramePool::Stats frame_pool;  ///< the engine thread's pool counters
};

/// Per-LP clock snapshot (checkpoint hook).  The serial engine reports an
/// empty set, and so does a parallel engine whose extra LPs never saw an
/// event — which keeps app checkpoint images byte-identical across engines.
struct LpClock {
  std::uint32_t lp = 0;
  SimTime now = 0.0;
  std::uint64_t next_seq = 0;
  std::uint64_t processed = 0;
};

class Engine {
 public:
  /// Uses the process-default queue kind (OPALSIM_EVENT_QUEUE / setter).
  Engine() : Engine(default_event_queue()) {}
  explicit Engine(EventQueueKind queue_kind)
      : queue_(make_event_queue(queue_kind)) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  virtual ~Engine();

  /// Current virtual time in seconds.
  VT_PURE SimTime now() const noexcept { return now_; }

  /// Spawns a process from a coroutine; the process starts when run() (or the
  /// current resume cycle) reaches its start event, scheduled at now().
  VT_PURE ProcessHandle spawn(Task<void> task);

  /// Awaitable that resumes the caller `dt` seconds of virtual time later.
  struct DelayAwaiter {
    Engine* engine;
    SimTime wake_at = 0.0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      engine->schedule(wake_at, h);
    }
    void await_resume() const noexcept {}
  };
  static_assert(std::is_trivially_destructible_v<DelayAwaiter>,
                "awaiters must stay trivially destructible (GCC 12 "
                "double-destruction of awaiter temporaries)");
  DelayAwaiter delay(SimTime dt) noexcept { return {this, now_ + dt}; }
  DelayAwaiter at(SimTime t) noexcept { return {this, t < now_ ? now_ : t}; }
  /// Yields: reschedules the caller at the current time, after already
  /// scheduled same-time events.
  DelayAwaiter yield() noexcept { return {this, now_}; }

  /// Runs until the event queue drains.  Rethrows the first exception that
  /// escaped any spawned process (after the queue drains or immediately if
  /// no joiner will observe it — policy: rethrow after drain).
  VT_PURE virtual void run();

  /// Runs until the queue drains or virtual time would exceed `t_end`.
  /// Events scheduled later than t_end remain pending.
  VT_PURE virtual void run_until(SimTime t_end);

  // -- logical-process surface (sim/lp.hpp, sim/parallel_engine.hpp) ---------
  // The serial engine is a one-LP machine: handler events share the single
  // (t, seq)-ordered queue with coroutine events, which is exactly what
  // makes it the serial/parallel equivalence oracle.

  /// Number of logical processes (1 on the serial engine).
  virtual std::uint32_t lps() const noexcept { return 1; }

  /// Schedules a handler event on the base LP's queue at time t.
  VT_PURE void schedule_handler(SimTime t, LpHandler fn, void* ctx,
                                std::uint64_t payload);

  /// Seeds a handler event onto LP `lp` (call outside run()).  The serial
  /// engine collapses every destination into its single queue.
  VT_PURE virtual void post_handler(LpId lp, SimTime t, LpHandler fn,
                                    void* ctx, std::uint64_t payload);

  /// Lookahead hint from the platform layer (the active network model's
  /// minimum latency).  The serial engine ignores it; the parallel engine
  /// derives its conservative window width from it.
  virtual void set_lookahead_hint(SimTime lookahead) noexcept {
    (void)lookahead;
  }

  /// Events processed across all LPs (== events_processed() when lps()==1).
  virtual std::uint64_t total_events_processed() const noexcept {
    return processed_;
  }

  /// True when every executed event is committed — always, on the serial
  /// and conservative engines.  The optimistic engine returns false while
  /// speculative history or staged cross-LP messages are pending; the
  /// checkpoint layer refuses to snapshot across an uncommitted horizon
  /// (ckpt::require_fully_committed).
  virtual bool fully_committed() const noexcept { return true; }

  /// Per-LP clocks for the checkpoint layer; empty unless a parallel
  /// engine's extra LPs actually ran events (see LpClock).
  virtual std::vector<LpClock> lp_clock_snaps() const { return {}; }
  /// Restores per-LP clocks (resume only; no-op on the serial engine).
  virtual void restore_lp_clocks(const std::vector<LpClock>& clocks) {
    (void)clocks;
  }

  /// Number of events processed since construction (for tests/diagnostics).
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Hot-path counters: events, queue ops, frame-pool hit rate.
  EngineCounters counters() const {
    EngineCounters c;
    c.events_processed = processed_;
    c.queue_name = queue_->name();
    c.queue = queue_->stats();
    c.frame_pool = FramePool::local_stats();
    return c;
  }

  /// Schedules a raw coroutine handle at time t (used by primitives).
  VT_PURE void schedule(SimTime t, std::coroutine_handle<> h);
  /// Schedules at the current time (after already-queued same-time events).
  VT_PURE void schedule_now(std::coroutine_handle<> h) { schedule(now_, h); }

  /// Sequence number the next schedule() call will consume.  Primitives that
  /// may later cancel their own event (recv_timeout's armed timer) record
  /// this before scheduling.
  VT_PURE std::uint64_t next_event_seq() const noexcept { return next_seq_; }
  /// Cancels a pending scheduled event by its sequence number (must be
  /// pending and not yet cancelled — see EventQueue::cancel's contract).
  VT_PURE void cancel_scheduled(std::uint64_t seq) { queue_->cancel(seq); }
  /// Live (pending, uncancelled) events — the checkpoint quiescence test:
  /// a run boundary is quiescent iff this is zero.
  std::size_t pending_events() const noexcept { return queue_->size(); }

  // -- Checkpoint/restart hooks (src/ckpt) -----------------------------------
  // Only meaningful on a freshly constructed engine that is being rebuilt
  // from a snapshot: restore_clock() warps virtual time forward before any
  // process is spawned; restore_counters() swaps in the golden run's event
  // accounting once the rebuild's own bookkeeping events have drained.

  /// Warps the virtual clock (resume only; never call on a live engine).
  void restore_clock(SimTime t) noexcept { now_ = t; }
  /// Overwrites event accounting with snapshot values (resume only).
  void restore_counters(std::uint64_t next_seq, std::uint64_t processed,
                        const EventQueueStats& queue_stats) {
    next_seq_ = next_seq;
    processed_ = processed;
    queue_->restore_stats(queue_stats);
  }

 protected:
  // The parallel engine derives from Engine and reuses the base members as
  // LP 0 (queue, clock, seq counter), so they are protected rather than
  // private; everything else in the tree still goes through the public API.
  void rethrow_pending_failure();

  /// Audit hooks for one event pop (time monotonicity + run isolation).
  void audit_pop(SimTime t);

  /// Run scope this engine was created in (see audit::RunScope); checked on
  /// every schedule/resume when the auditor is enabled.
  std::uint64_t audit_run_tag_ = audit::current_run();
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::unique_ptr<EventQueue> queue_;

 private:
  struct Root {
    detail::RootCoro coro;
    std::shared_ptr<detail::ProcessState> state;
  };
  std::vector<Root> roots_;
};

// -- engine factory ----------------------------------------------------------

enum class EngineKind { kSerial, kParallel, kOptimistic };

/// Process-wide default engine kind, initialized once from OPALSIM_ENGINE
/// (serial | parallel | optimistic; unset = serial); overridable for
/// tests/benches.
EngineKind default_engine() noexcept;
void set_default_engine(EngineKind kind) noexcept;

/// Process-wide default LP count for the parallel engine, initialized once
/// from OPALSIM_LPS (clamped to [1, 64]; unset = 1).
std::uint32_t default_lps() noexcept;
void set_default_lps(std::uint32_t lps) noexcept;

/// Builds an engine of the given kind (`lps` is ignored by the serial
/// kind; parallel with lps == 1 degenerates to the serial run loop).
std::unique_ptr<Engine> make_engine(EngineKind kind, std::uint32_t lps);
/// Builds the process-default engine (OPALSIM_ENGINE / OPALSIM_LPS).
std::unique_ptr<Engine> make_engine();

inline ProcessHandle::JoinAwaiter ProcessHandle::join() const {
  return JoinAwaiter{engine_, state_};
}

}  // namespace opalsim::sim
