// Pluggable event queue for the DES engine.
//
// The engine's contract is a strict total order on (time, seq): seq is a
// monotone counter assigned at schedule time, so any queue that pops the
// exact same (t, seq) order is a legal drop-in replacement — virtual-time
// results stay bit-for-bit identical.  Two implementations live behind this
// interface:
//
//   heap    — std::priority_queue reference implementation (the seed
//             engine's queue).  O(log n) push/pop, always correct, used as
//             the oracle in the randomized equivalence tests.
//   ladder  — a ladder-style (calendar) queue tuned for the engine's
//             mostly-near-future schedule pattern: O(1) appends into an
//             unsorted far band, on-demand splitting of the far band into
//             rung buckets, and a small sorted bottom band served by index.
//             Events are stored by value in reused vectors, so the steady
//             state performs no per-event allocation at all.
//
// The active implementation is selected per engine (Engine ctor) with the
// process default from OPALSIM_EVENT_QUEUE (ladder | heap; default ladder),
// overridable programmatically for tests/benches via
// set_default_event_queue().
//
// Cancellation is lazy: cancel(seq) records a tombstone and pops skip it.
// Lazy tombstones are only reclaimed when they reach the top of the order,
// which is fine for the rare timer cancellation but pathological under the
// optimistic engine's rollback churn (every annihilated anti-message pair
// leaves one).  cancel() therefore compacts when tombstones come to
// outnumber live events: the backing store is drained in (t, seq) order,
// tombstoned entries dropped, survivors re-pushed — identical pop order,
// bounded memory.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "sim/time.hpp"
#include "util/domains.hpp"

namespace opalsim::sim {

/// Identifies one logical process of the parallel engine.  LP 0 is the
/// base LP: the serial engine is a one-LP machine, and on the parallel
/// engine LP 0 hosts every coroutine process (see sim/lp.hpp).
using LpId = std::uint32_t;

class LpRuntime;  // sim/lp.hpp — the surface a handler event may touch

/// Handler-event callback.  Unlike coroutine events, handler events carry
/// no frame and may execute on any LP of the parallel engine; they interact
/// with virtual time only through the LpRuntime they are handed.
using LpHandler = void (*)(LpRuntime&, void* ctx, std::uint64_t payload);

/// One scheduled resumption.  Total order: (t, seq) lexicographic.
/// Exactly one of `handle` (coroutine event) and `fn` (handler event) is
/// set; the engine dispatches on `fn != nullptr`.
struct ScheduledEvent {
  SimTime t = 0.0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> handle;
  LpHandler fn = nullptr;
  void* ctx = nullptr;
  std::uint64_t payload = 0;
};

/// Lifetime operation counters of one queue instance.
struct EventQueueStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t cancels = 0;
  std::uint64_t peak_size = 0;
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  virtual const char* name() const noexcept = 0;

  VT_PURE void push(const ScheduledEvent& ev) {
    ++stats_.pushes;
    ++live_;
    if (live_ > stats_.peak_size) stats_.peak_size = live_;
    do_push(ev);
  }

  /// Pops the live event with the smallest (t, seq).  Precondition: !empty().
  VT_PURE ScheduledEvent pop() {
    purge_cancelled();
    ++stats_.pops;
    --live_;
    return do_pop();
  }

  /// Time of the next live event.  Precondition: !empty().
  VT_PURE SimTime next_time() {
    purge_cancelled();
    return do_peek().t;
  }

  /// Lazily removes the pending event with sequence number `seq`.  The
  /// caller must pass a seq that is actually pending and not yet cancelled
  /// (the tombstone is trusted, not verified).  Compacts the backing store
  /// when tombstones outnumber live events (see header comment).
  VT_PURE void cancel(std::uint64_t seq) {
    cancelled_.insert(seq);
    ++stats_.cancels;
    --live_;
    maybe_compact();
  }

  bool empty() const noexcept { return live_ == 0; }
  std::size_t size() const noexcept { return live_; }
  /// Cancelled entries still physically stored (0 right after a compaction).
  std::size_t tombstones() const noexcept { return cancelled_.size(); }
  /// Tombstone compaction passes performed (diagnostics; not checkpointed).
  std::uint64_t compactions() const noexcept { return compactions_; }
  const EventQueueStats& stats() const noexcept { return stats_; }

  /// Overwrites lifetime counters with snapshot values (checkpoint resume).
  /// live_ is left untouched: restore happens at a quiescent boundary where
  /// the queue is empty in both the golden and the resumed run.
  void restore_stats(const EventQueueStats& s) noexcept { stats_ = s; }

 protected:
  virtual void do_push(const ScheduledEvent& ev) = 0;
  virtual ScheduledEvent do_pop() = 0;
  /// May mutate internal bands (the ladder materializes its bottom band);
  /// the returned reference is valid until the next queue operation.
  virtual const ScheduledEvent& do_peek() = 0;

 private:
  void purge_cancelled() {
    while (!cancelled_.empty()) {
      const auto it = cancelled_.find(do_peek().seq);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      do_pop();
    }
  }

  /// Physical entries = live_ + tombstones: the cancel contract (pending,
  /// not yet cancelled) makes every tombstone account for exactly one
  /// stored event, so a full drain-filter-rebuild is exact.
  void maybe_compact() {
    static constexpr std::size_t kCompactMinTombstones = 64;
    if (cancelled_.size() < kCompactMinTombstones) return;
    if (cancelled_.size() <= live_) return;
    const std::size_t phys = live_ + cancelled_.size();
    compact_scratch_.clear();
    compact_scratch_.reserve(live_);
    for (std::size_t i = 0; i < phys; ++i) {
      ScheduledEvent ev = do_pop();
      if (cancelled_.erase(ev.seq) == 0) compact_scratch_.push_back(ev);
    }
    cancelled_.clear();
    for (const ScheduledEvent& ev : compact_scratch_) do_push(ev);
    compact_scratch_.clear();
    ++compactions_;
  }

  std::size_t live_ = 0;
  std::set<std::uint64_t> cancelled_;
  std::vector<ScheduledEvent> compact_scratch_;
  std::uint64_t compactions_ = 0;
  EventQueueStats stats_;
};

enum class EventQueueKind { kLadder, kHeap };

/// Process-wide default used by Engine's default constructor.  Initialized
/// once from OPALSIM_EVENT_QUEUE (ladder | heap; unset = ladder); atomically
/// readable from sweep worker threads constructing engines concurrently.
EventQueueKind default_event_queue() noexcept;
void set_default_event_queue(EventQueueKind kind) noexcept;

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind);

}  // namespace opalsim::sim
