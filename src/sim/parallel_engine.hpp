// LP-sharded conservative-lookahead parallel DES engine.
//
// ParallelEngine is API-compatible with Engine (selected at runtime via
// OPALSIM_ENGINE=serial|parallel and OPALSIM_LPS=N — see make_engine in
// sim/engine.hpp) and derives from it: the base Engine members ARE logical
// process 0.  Every coroutine process spawns onto LP 0 and executes on the
// thread that called run(), so coroutine programs — the whole ParallelOpal /
// PVM / sciddle stack — produce byte-identical sweep CSVs, traces, metrics
// and checkpoint images on either engine at any LP count.  LPs 1..N-1 host
// handler events (sim/lp.hpp) and are where partitioned workloads (see
// bench_pdes) actually scale.
//
// Execution model — synchronous conservative windows:
//   round:  drain every inter-LP link into its destination queue, in
//           sorted (t, src LP, per-link seq) order;
//           t_min   = min over LPs of next event time;
//           horizon = t_min + lookahead (the active network model's
//                     minimum latency, via set_lookahead_hint);
//           every LP with pending events advances to the horizon — LP 0
//           inline on the caller thread, LPs >= 1 as jobs on a work-
//           stealing ThreadPool — then all rounds barrier.
//   solo fast path: when exactly one LP holds events and no message is in
//           flight, that LP runs unbounded until it posts cross-LP (the
//           serial engine's loop, literally, for pure-coroutine programs).
//
// Cross-LP posts must arrive >= lookahead after the sender's clock
// (audited: lp-lookahead), so a receiver that advanced to the horizon can
// never be handed an event in its past: windows are safe without per-link
// null messages.  With lookahead 0 the horizon degenerates to t_min and
// only ties at t_min run per round — still correct, just slow.
//
// Determinism: per-LP streams execute in (t, local seq) order, link drains
// are sorted, and per-LP trace buffers merge into the caller's sink at the
// observation boundary in (t, lp, local seq) order (audited:
// lp-merged-order).  No wall clock, thread id or scheduling artifact ever
// reaches an observable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "util/domains.hpp"
#include "util/thread_pool.hpp"

namespace opalsim::sim {

class ParallelEngine final : public Engine, public LpRouter {
 public:
  /// `lps` is clamped to [1, kMaxLps].  With lps == 1 the engine IS the
  /// serial engine (base run loop, no pool, no links).
  explicit ParallelEngine(std::uint32_t lps)
      : ParallelEngine(lps, default_event_queue()) {}
  ParallelEngine(std::uint32_t lps, EventQueueKind queue_kind);
  ~ParallelEngine() override;

  static constexpr std::uint32_t kMaxLps = 64;

  std::uint32_t lps() const noexcept override { return nlps_; }
  void set_lookahead_hint(SimTime lookahead) noexcept override;
  SimTime lookahead() const noexcept {
    return lookahead_.load(std::memory_order_relaxed);
  }

  VT_PURE void run() override;
  VT_PURE void run_until(SimTime t_end) override;

  VT_PURE void post_handler(LpId lp, SimTime t, LpHandler fn, void* ctx,
                            std::uint64_t payload) override;

  std::uint64_t total_events_processed() const noexcept override;
  std::vector<LpClock> lp_clock_snaps() const override;
  void restore_lp_clocks(const std::vector<LpClock>& clocks) override;

  // -- introspection (bench/tests) -------------------------------------------
  /// Conservative windows executed (0 for a run that never left the solo
  /// fast path after its first window).
  std::uint64_t rounds() const noexcept { return rounds_; }
  /// Messages that crossed an inter-LP link.
  std::uint64_t link_messages() const noexcept;
  /// Messages that overflowed a link's ring into the spill vector.
  std::uint64_t link_spills() const noexcept;
  /// Direct access to LP k (k in [1, lps())) for tests.
  Lp& lp_ref(LpId k);

  // -- LpRouter ----------------------------------------------------------------
  /// Pushes a message onto the (src, dst) link.  Lookahead is checked by
  /// the posting runtime (Lp::post / the base-LP adapter) before routing.
  void route(LpId src, LpId dst, SimTime t, LpHandler fn, void* ctx,
             std::uint64_t payload) override;

 private:
  friend class BaseLpRuntime;

  /// Round loop.  Deliberately untagged: it is the seam where virtual-time
  /// work (drain_lp0, the LPs' advance loops — all VT_PURE) meets the
  /// HOST_ONLY thread-pool dispatch that carries it.
  void run_rounds(bool bounded, SimTime t_end);
  /// Runs base-queue (LP 0) events with t <= cap on the caller thread.
  VT_PURE std::uint64_t drain_lp0(SimTime cap, bool stop_on_remote_post);
  /// Drains every link into its destination queue in sorted
  /// (t, src, src_seq) order; returns messages ingested.
  std::size_t drain_all_links();
  /// Appends each LP's trace buffer to the caller's sink in LP order
  /// (export sorts by (t, seq), so the result reads (t, lp, local seq)).
  void merge_lp_traces(obs::TraceSink* caller_sink);
  void ensure_pool();

  const std::uint32_t nlps_;
  /// LPs 1..nlps_-1 (index k-1); LP 0 is the base Engine.  The vector is
  /// built at construction and never resized; each Lp is LP-confined.
  std::vector<std::unique_ptr<Lp>> lps_;
  /// links_[src * nlps_ + dst], src != dst; cross-LP-safe by design.
  std::vector<std::unique_ptr<InterLpLink>> links_;
  /// Created on the first multi-LP round (pure-coroutine runs never spawn
  /// a thread); internally synchronized.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Window width; written by the platform layer before run(), read by
  /// round dispatch.  Atomic so a late hint is still race-free.
  std::atomic<SimTime> lookahead_{0.0};
  /// Set by route() from any LP's round thread; the solo fast path polls
  /// it to fall back to windowed rounds.
  std::atomic<bool> remote_posted_{false};
  // Caller-thread-only round bookkeeping (never touched by LP jobs).
  std::uint64_t rounds_ = 0;               // lint:allow(lp-shared-state): caller-thread only
  std::vector<LinkMsg> drain_scratch_;     // lint:allow(lp-shared-state): caller-thread only
};

}  // namespace opalsim::sim
