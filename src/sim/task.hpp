// Task<T>: a lazy, move-only coroutine type with symmetric transfer.
//
// Tasks are the building block for simulation processes: a coroutine body may
// `co_await` other Task<T>s (nested calls), awaitable primitives (Event,
// Queue, Resource, Barrier) and Engine::delay().  A Task does nothing until
// awaited; the awaiting coroutine is resumed exactly once when the task
// completes, with the task's value or exception delivered at the await site.
//
// Root-level tasks are driven by Engine::spawn(), which wraps them into a
// simulation process (see engine.hpp).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <type_traits>
#include <utility>

#include "sim/pool.hpp"

namespace opalsim::sim {

template <typename T>
class Task;

namespace detail {

/// PooledFrame: the whole coroutine frame (promise + locals) is allocated
/// from the thread's FramePool slab arena instead of the global heap.
struct TaskPromiseBase : PooledFrame {
  std::coroutine_handle<> continuation;  ///< resumed at final suspend
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  static_assert(std::is_trivially_destructible_v<FinalAwaiter>,
                "awaiters must stay trivially destructible (GCC 12 "
                "double-destruction of awaiter temporaries)");

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise final : TaskPromiseBase {
  // Storage for the result; alignas/union avoided for clarity — T must be
  // default-constructible-free: we use an optional-like manual flag.
  alignas(T) unsigned char storage[sizeof(T)];
  bool has_value = false;

  Task<T> get_return_object() noexcept;

  template <typename U>
  void return_value(U&& value) {
    ::new (static_cast<void*>(storage)) T(std::forward<U>(value));
    has_value = true;
  }

  T& value() & noexcept {
    assert(has_value);
    return *std::launder(reinterpret_cast<T*>(storage));
  }

  ~TaskPromise() {
    if (has_value) value().~T();
  }
};

template <>
struct TaskPromise<void> final : TaskPromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() const noexcept {}
};

}  // namespace detail

/// Lazy coroutine task.  Move-only; owns its coroutine frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiter: starts the task on suspend (symmetric transfer) and resumes the
  /// awaiting coroutine at task completion.
  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> cont) const noexcept {
      handle.promise().continuation = cont;
      return handle;
    }
    T await_resume() const {
      auto& p = handle.promise();
      if (p.exception) std::rethrow_exception(p.exception);
      if constexpr (!std::is_void_v<T>) return std::move(p.value());
    }
  };
  static_assert(std::is_trivially_destructible_v<Awaiter>,
                "awaiters must stay trivially destructible (GCC 12 "
                "double-destruction of awaiter temporaries)");

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }
  Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }

  /// Releases ownership of the coroutine frame (used by Engine::spawn).
  Handle release() noexcept { return std::exchange(handle_, {}); }

 private:
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace opalsim::sim
