// Counted resource with FIFO grant order — the contention primitive behind
// shared network media (Ethernet bus), PVM daemons and per-node links.
//
//   sim::Resource link(engine, /*capacity=*/1);
//   {
//     auto lock = co_await link.scoped_acquire();
//     co_await engine.delay(transfer_time);
//   }   // released here
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <string>
#include <type_traits>

#include "sim/audit.hpp"
#include "sim/engine.hpp"

namespace opalsim::sim {

class Resource;

/// RAII grant of `amount` units; releases on destruction (move-only).
class ResourceLock {
 public:
  ResourceLock() noexcept = default;
  ResourceLock(Resource* r, long amount) noexcept
      : resource_(r), amount_(amount) {}
  ResourceLock(ResourceLock&& o) noexcept
      : resource_(std::exchange(o.resource_, nullptr)), amount_(o.amount_) {}
  ResourceLock& operator=(ResourceLock&& o) noexcept;
  ResourceLock(const ResourceLock&) = delete;
  ResourceLock& operator=(const ResourceLock&) = delete;
  ~ResourceLock();

  void release();
  bool owns() const noexcept { return resource_ != nullptr; }

 private:
  Resource* resource_ = nullptr;
  long amount_ = 0;
};

class Resource {
 public:
  Resource(Engine& engine, long capacity) noexcept
      : engine_(&engine), capacity_(capacity) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Resource-release balance audit: a resource dying with units still held
  /// or acquirers still parked means some process leaked a grant (or the
  /// engine tore down mid-protocol) — the contention accounting built on it
  /// is then meaningless.
  ~Resource() {
    if (audit::enabled() && (in_use_ != 0 || !waiters_.empty())) {
      audit::fail(audit::Invariant::kResourceBalance,
                  "resource destroyed with " + std::to_string(in_use_) +
                      " of " + std::to_string(capacity_) +
                      " units still held and " +
                      std::to_string(waiters_.size()) + " parked acquirers",
                  engine_->now());
    }
  }

  long capacity() const noexcept { return capacity_; }
  long in_use() const noexcept { return in_use_; }
  long available() const noexcept { return capacity_ - in_use_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

  struct AcquireAwaiter {
    Resource* resource;
    long amount = 0;
    std::coroutine_handle<> handle;

    bool await_ready() const noexcept {
      // FIFO fairness: even if units are free, queue behind earlier waiters.
      return resource->waiters_.empty() &&
             resource->available() >= amount;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      resource->waiters_.push_back(this);
    }
    void await_resume() const noexcept {
      // On the ready path the grant happens here; on the suspend path the
      // grant already happened in grant_waiters() before resumption.
      if (!granted_via_queue) resource->in_use_ += amount;
    }
    bool granted_via_queue = false;
  };
  static_assert(std::is_trivially_destructible_v<AcquireAwaiter>,
                "awaiters must stay trivially destructible (GCC 12 "
                "double-destruction of awaiter temporaries)");

  /// Awaitable acquire of `amount` units (no RAII; pair with release()).
  AcquireAwaiter acquire(long amount = 1) {
    assert(amount > 0 && amount <= capacity_);
    return AcquireAwaiter{this, amount, {}};
  }

  /// Awaitable acquire returning an RAII lock.
  struct ScopedAcquireAwaiter {
    AcquireAwaiter inner;
    bool await_ready() noexcept { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    ResourceLock await_resume() noexcept {
      inner.await_resume();
      return ResourceLock(inner.resource, inner.amount);
    }
  };
  static_assert(std::is_trivially_destructible_v<ScopedAcquireAwaiter>,
                "awaiters must stay trivially destructible (GCC 12 "
                "double-destruction of awaiter temporaries)");
  ScopedAcquireAwaiter scoped_acquire(long amount = 1) {
    return ScopedAcquireAwaiter{acquire(amount)};
  }

  void release(long amount = 1) {
    assert(amount > 0 && in_use_ >= amount);
    in_use_ -= amount;
    grant_waiters();
  }

 private:
  void grant_waiters() {
    while (!waiters_.empty() &&
           waiters_.front()->amount <= available()) {
      AcquireAwaiter* w = waiters_.front();
      waiters_.pop_front();
      in_use_ += w->amount;
      w->granted_via_queue = true;
      engine_->schedule_now(w->handle);
    }
  }

  Engine* engine_;
  long capacity_;
  long in_use_ = 0;
  std::deque<AcquireAwaiter*> waiters_;
};

inline ResourceLock& ResourceLock::operator=(ResourceLock&& o) noexcept {
  if (this != &o) {
    release();
    resource_ = std::exchange(o.resource_, nullptr);
    amount_ = o.amount_;
  }
  return *this;
}

inline ResourceLock::~ResourceLock() { release(); }

inline void ResourceLock::release() {
  if (resource_ != nullptr) {
    resource_->release(amount_);
    resource_ = nullptr;
  }
}

}  // namespace opalsim::sim
