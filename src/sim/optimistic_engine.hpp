// Optimistic (Time Warp) LP-sharded parallel DES engine.
//
// OptimisticEngine is the third engine behind make_engine
// (OPALSIM_ENGINE=optimistic, OPALSIM_LPS=N).  Like ParallelEngine it
// derives from Engine — the base members ARE logical process 0, which hosts
// every coroutine process, never speculates, and always executes on the
// caller thread, so pure-coroutine programs (the whole ParallelOpal / PVM /
// sciddle stack) produce byte-identical traces, sweep CSVs, metrics and
// checkpoint images on any engine kind.  LPs 1..N-1 host handler events and
// execute them OPTIMISTICALLY: past the horizon conservative windows would
// allow, without any lookahead contract on cross-LP posts.
//
// Execution model — synchronous rounds around a GVT ring:
//   deliver   (caller thread) drain every inter-LP link in sorted
//             (t, src LP, per-link seq) order and deliver to the
//             destination: a positive message behind the LP's clock is a
//             STRAGGLER (roll the LP back, re-queue the undone events with
//             their original seqs, emit anti-messages for their sends); an
//             anti-message annihilates its positive wherever it is —
//             pending in the queue (EventQueue::cancel), already executed
//             (rollback, then cancel), or staged for LP 0.  Antis chase
//             positives down the same FIFO link, so a positive is always
//             seen first.  Repeat until no link moves: the system is then
//             message-quiescent.
//   GVT       with no messages in flight, GVT = min time over every
//             unprocessed event (LP 0's queue, each LP's queue, and the
//             LP 0 staging buffer).  Everything executed at t <= GVT can
//             never be invalidated — no unprocessed event can cause a send
//             into its past — so GVT is the commit horizon (audited:
//             committed-time; GVT is monotonically non-decreasing).
//   commit    fossil-collect history up to GVT: flush speculative trace
//             prefixes to the caller's sink in LP order, fold committed
//             event counts, recycle snapshots (keeping the newest
//             at-or-before the horizon as the coast-forward floor), and
//             release staged LP 0 messages with t <= GVT.
//   speculate LP 0 advances inclusively to GVT inline on the caller thread
//             (its events are committed the moment they run — coroutine
//             frames cannot be snapshotted, so LP 0 never speculates);
//             LPs >= 1 run as thread-pool jobs, each executing up to
//             OPALSIM_GVT_PERIOD events (sparse state snapshots every
//             OPALSIM_CKPT_INTERVAL_EVENTS events via the registered
//             StateSaver), then all jobs barrier on the shared RoundLatch.
//
// State saving: an LP with a registered StateSaver (set_state_saver)
// speculates freely; rollback restores the newest snapshot at or before
// the target and coast-forward replays the kept suffix with sends, traces
// and scheduling suppressed (handlers must be deterministic functions of
// registered state + event, the same contract the serial/parallel
// equivalence already demands).  An LP without a saver never runs past the
// commit horizon — always correct, just conservative-lockstep slow.
//
// Determinism: every phase is a deterministic function of queue/link
// state — the deliver phase is single-threaded over sorted batches, and
// each LP's speculation is a deterministic prefix of its own (t, local
// seq) order.  Thread scheduling affects wall-clock only; rollback
// patterns, commit order and all observables are identical run to run.
// Observation is committed-order: nothing reaches the caller's sink until
// it is at or below the commit horizon.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "sim/state_save.hpp"
#include "util/domains.hpp"
#include "util/thread_pool.hpp"

namespace opalsim::sim {

class OptimisticEngine;

/// One cross-LP send recorded by a speculatively executed event, so a
/// rollback can chase it with an anti-message carrying the same uid.
struct SentMsg {
  OPALSIM_SPECULATIVE;
  LpId dst = 0;
  SimTime t = 0.0;
  std::uint64_t uid = 0;
};

/// One speculatively executed event in an OptLp's history: everything
/// rollback needs to undo it (pre-state snapshot when sparse saving took
/// one, pre-execution clock, recorded sends) and commit needs to finalize
/// it (trace extent, link identity for anti-message pairing).
struct SpecRecord {
  OPALSIM_SPECULATIVE;
  ScheduledEvent ev;            ///< as popped — original local seq preserved
  SimTime prev_now = 0.0;       ///< LP clock before execution
  Snapshot before;              ///< state image before execution (sparse)
  std::uint64_t uid = 0;        ///< link uid when cross-LP delivered (0 = local)
  LpId src = 0;                 ///< source LP of a link-delivered event
  bool committed = false;       ///< flushed/counted; retained as replay floor
  std::size_t trace_begin = 0;  ///< speculative trace offset at execution
  std::vector<SentMsg> sends;   ///< cross-LP messages this event emitted
  /// Local seqs this event created via schedule()/self-post.  Rollback must
  /// retract them — re-execution re-creates them — by cancelling pending
  /// ones and not re-queueing executed ones (they sit later in the undone
  /// suffix, since a child always runs after its parent).
  std::vector<std::uint64_t> scheduled;
};

/// Rollback/commit counters of one OptLp (aggregated by the engine).
struct OptLpStats {
  std::uint64_t speculated = 0;       ///< events executed (incl. re-runs)
  std::uint64_t committed = 0;        ///< events committed (== serial count)
  std::uint64_t stragglers = 0;       ///< past-time positives received
  std::uint64_t rollbacks = 0;        ///< rollback operations
  std::uint64_t rolled_back = 0;      ///< events undone by rollbacks
  std::uint64_t antis_sent = 0;       ///< anti-messages emitted
  std::uint64_t annihilations = 0;    ///< positive/anti pairs cancelled
  std::uint64_t replayed = 0;         ///< coast-forward re-executions
  std::uint64_t state_saves = 0;      ///< snapshots taken
  std::uint64_t state_bytes = 0;      ///< snapshot bytes copied
  std::uint64_t fossils = 0;          ///< history entries fossil-collected
};

/// One optimistic logical process (index >= 1): private queue, clock, seq
/// counter, frame arena, speculative trace buffer, executed-event history
/// and snapshot pool.  Exactly one thread touches an OptLp at a time: a
/// pool worker during the speculate phase, the caller thread during
/// deliver/commit — the RoundLatch barrier orders the handoffs.
class OptLp final : public LpRuntime {
 public:
  OPALSIM_LP_CONFINED;

  OptLp(LpId id, std::uint32_t nlps, EventQueueKind queue_kind,
        OptimisticEngine* engine);
  ~OptLp() override;

  // -- LpRuntime -------------------------------------------------------------
  SimTime now() const noexcept override { return now_; }
  LpId lp() const noexcept override { return id_; }
  std::uint32_t lps() const noexcept override { return nlps_; }
  /// Optimistic synchronization has no lookahead contract.
  SimTime lookahead() const noexcept override { return 0.0; }
  VT_PURE void schedule(SimTime t, LpHandler fn, void* ctx,
                        std::uint64_t payload) override;
  VT_PURE void post(LpId dst, SimTime t, LpHandler fn, void* ctx,
                    std::uint64_t payload) override;

  // -- engine side -----------------------------------------------------------
  bool has_events() const noexcept { return !queue_->empty(); }
  /// Time of the next pending event.  Precondition: has_events().
  SimTime next_time() { return queue_->next_time(); }

  /// Registers the LP's state saver; without one the LP never speculates
  /// past the commit horizon.  Call before run().
  void set_state_saver(StateSaver* saver) noexcept { saver_ = saver; }
  /// Events between sparse snapshots (clamped to >= 1).
  void set_save_interval(std::uint32_t n) noexcept {
    save_interval_ = n < 1 ? 1 : n;
  }

  /// Inserts a pre-run seed event, assigning the next local seq.
  VT_PURE void ingest(SimTime t, LpHandler fn, void* ctx,
                      std::uint64_t payload);

  /// Delivers one drained link message (positive or anti) on the caller
  /// thread.  May roll the LP back (straggler / anti for an executed
  /// event); audits committed-time and anti-pairing.
  VT_PURE void deliver(const LinkMsg& m);

  /// Speculatively executes up to `max_events` events with t <= horizon
  /// (LPs without a saver cap at the commit horizon instead).  Installs the
  /// speculative trace buffer as the thread's sink when `traced`.  Returns
  /// events executed.
  VT_PURE std::uint64_t speculate(SimTime horizon, std::uint32_t max_events,
                                  bool traced);

  /// Commits everything at or below `gvt`: flushes the committed trace
  /// prefix into `committed_sink` (may be null), folds counts, and
  /// fossil-collects history down to the coast-forward floor.  `gvt` must
  /// be non-decreasing across calls (audited: committed-time).
  VT_PURE void commit(SimTime gvt, obs::TraceSink* committed_sink);

  // -- introspection ---------------------------------------------------------
  std::uint64_t committed_events() const noexcept { return committed_; }
  std::uint64_t next_local_seq() const noexcept { return next_seq_; }
  /// Uncommitted (speculative) history entries.
  std::size_t speculative_events() const noexcept;
  SimTime committed_through() const noexcept { return committed_through_; }
  const OptLpStats& stats() const noexcept { return stats_; }
  const EventQueue& queue() const noexcept { return *queue_; }
  FramePool& arena() noexcept { return arena_; }

  // -- checkpoint hooks (mirror Lp) ------------------------------------------
  void restore_clock(SimTime t) noexcept { now_ = t; }
  void restore_counters(std::uint64_t next_seq,
                        std::uint64_t processed) noexcept {
    next_seq_ = next_seq;
    committed_ = processed;
  }
  /// Clamps the clock forward to t (run_until semantics; never backwards).
  void advance_clock_to(SimTime t) noexcept {
    if (now_ < t) now_ = t;
    if (committed_through_ < t) committed_through_ = t;
  }

 private:
  struct PendingMsg {
    std::uint64_t uid = 0;
    LpId src = 0;
  };

  std::uint64_t next_uid() noexcept {
    return (static_cast<std::uint64_t>(id_) << 48) | ++uid_counter_;
  }
  /// True when the newest snapshot is >= save_interval_ entries back.
  bool need_snapshot() const;
  /// Rolls back history entries [idx, end): restores state (snapshot +
  /// coast-forward replay), re-queues the undone events with their original
  /// seqs, emits anti-messages for their recorded sends, truncates the
  /// speculative trace.
  void rollback_from(std::size_t idx, const char* why);
  /// Annihilates the pending positive with this uid (queue cancel).
  /// Precondition: pending_by_uid_ contains uid.
  void annihilate_pending(std::uint64_t uid);
  [[gnu::cold]] void fail_or_fatal(audit::Invariant inv,
                                   const std::string& detail, SimTime t);

  const LpId id_;
  const std::uint32_t nlps_;
  OptimisticEngine* const engine_;
  SimTime now_ = 0.0;
  SimTime committed_through_ = 0.0;  ///< commit horizon last applied
  std::uint64_t next_seq_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t uid_counter_ = 0;
  std::uint32_t save_interval_ = 8;
  bool replaying_ = false;        ///< coast-forward: suppress sends/schedules
  StateSaver* saver_ = nullptr;
  SpecRecord* cur_ = nullptr;     ///< event being executed (sends recording)
  std::unique_ptr<EventQueue> queue_;
  FramePool arena_;
  SnapshotPool snap_pool_;
  std::deque<SpecRecord> history_;
  obs::SpecBuffer spec_trace_;
  obs::NullSink replay_sink_;     ///< installed during coast-forward replay
  std::vector<std::byte> save_scratch_;
  /// Link-delivered events still pending in the queue, by local seq and by
  /// link uid — the two directions anti-message pairing needs.  Point
  /// lookups/erases only, never iterated, so hash order is unobservable.
  // lint:allow(unordered-container): key lookup only, never iterated
  std::unordered_map<std::uint64_t, PendingMsg> pending_by_seq_;
  // lint:allow(unordered-container): key lookup only, never iterated
  std::unordered_map<std::uint64_t, std::uint64_t> pending_by_uid_;
  OptLpStats stats_;
};

/// Aggregated optimistic-engine statistics (bench/metrics introspection).
struct OptimisticStats {
  std::uint64_t rounds = 0;         ///< synchronous rounds executed
  std::uint64_t gvt_rounds = 0;     ///< rounds that computed a GVT
  double gvt = 0.0;                 ///< last commit horizon
  std::uint64_t stragglers = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t antis_sent = 0;
  std::uint64_t annihilations = 0;
  std::uint64_t replayed = 0;
  std::uint64_t speculated = 0;
  std::uint64_t committed = 0;
  std::uint64_t state_saves = 0;
  std::uint64_t state_bytes = 0;
  std::uint64_t fossils = 0;
};

class OptimisticEngine final : public Engine {
 public:
  /// `lps` is clamped to [1, kMaxLps].  With lps == 1 the engine IS the
  /// serial engine (base run loop, no pool, no links).
  explicit OptimisticEngine(std::uint32_t lps)
      : OptimisticEngine(lps, default_event_queue()) {}
  OptimisticEngine(std::uint32_t lps, EventQueueKind queue_kind);
  ~OptimisticEngine() override;

  static constexpr std::uint32_t kMaxLps = 64;

  std::uint32_t lps() const noexcept override { return nlps_; }

  VT_PURE void run() override;
  VT_PURE void run_until(SimTime t_end) override;

  VT_PURE void post_handler(LpId lp, SimTime t, LpHandler fn, void* ctx,
                            std::uint64_t payload) override;

  std::uint64_t total_events_processed() const noexcept override;
  std::vector<LpClock> lp_clock_snaps() const override;
  void restore_lp_clocks(const std::vector<LpClock>& clocks) override;

  /// True when no speculative history and no staged message is pending —
  /// the commit-horizon gate the checkpoint layer requires.
  bool fully_committed() const noexcept override;

  // -- configuration ---------------------------------------------------------
  /// Registers LP `lp`'s state saver (lp in [1, lps())); call before run().
  void set_state_saver(LpId lp, StateSaver* saver);
  /// Per-round speculation budget per LP (OPALSIM_GVT_PERIOD).
  void set_gvt_period(std::uint32_t events) noexcept;
  /// Sparse-snapshot interval in events (OPALSIM_CKPT_INTERVAL_EVENTS).
  void set_save_interval(std::uint32_t events) noexcept;

  // -- introspection (bench/tests) -------------------------------------------
  /// Last commit horizon (0 before the first GVT round).
  SimTime gvt() const noexcept { return gvt_; }
  std::uint64_t rounds() const noexcept { return rounds_; }
  /// Aggregated rollback/GVT counters across all LPs.
  OptimisticStats stats() const;
  std::uint64_t link_messages() const noexcept;
  /// Direct access to LP k (k in [1, lps())) for tests.
  OptLp& lp_ref(LpId k);

  // -- OptLp backend ---------------------------------------------------------
  /// Pushes a (positive or anti) message onto the (src, dst) link.  Called
  /// by OptLp::post / rollback and by the base-LP adapter.
  void spec_route(LpId src, LpId dst, LinkMsg m);
  /// Sender-unique uid for LP 0 sends (LP 0 never rolls back, so its
  /// messages never meet an anti — the uid only feeds receiver bookkeeping).
  std::uint64_t next_lp0_uid() noexcept { return ++lp0_uid_counter_; }

 private:
  friend class BaseOptRuntime;

  /// Round loop.  Deliberately untagged: the seam where virtual-time work
  /// (deliver/commit/LP advance — all VT_PURE) meets the HOST_ONLY
  /// thread-pool dispatch that carries it.
  void run_rounds(bool bounded, SimTime t_end);
  /// Runs base-queue (LP 0) events with t <= cap on the caller thread.
  VT_PURE std::uint64_t drain_lp0(SimTime cap, bool stop_on_remote_post);
  /// One drain-and-deliver pass over every link (sorted per destination);
  /// returns messages moved.  LP-0-bound positives go to the staging
  /// buffer; antis annihilate staged positives.
  std::size_t drain_and_deliver();
  /// Moves staged LP 0 messages with t <= gvt into the base queue in
  /// sorted (t, src, src_seq) order.
  void release_staged(SimTime gvt);
  /// Minimum time over every unprocessed event; kNoEvent when none.
  SimTime unprocessed_min();
  void ensure_pool();

  const std::uint32_t nlps_;
  /// LPs 1..nlps_-1 (index k-1); LP 0 is the base Engine.  Built at
  /// construction, never resized; each OptLp is LP-confined.
  std::vector<std::unique_ptr<OptLp>> lps_;
  /// links_[src * nlps_ + dst], src != dst; cross-LP-safe by design.
  std::vector<std::unique_ptr<InterLpLink>> links_;
  /// Created on the first multi-LP round; internally synchronized.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Set by spec_route from any LP's round thread; the solo fast path
  /// polls it to fall back to full rounds.
  std::atomic<bool> remote_posted_{false};
  std::uint32_t gvt_period_;               // lint:allow(lp-shared-state): set before run, read by caller thread
  std::uint32_t save_interval_;            // lint:allow(lp-shared-state): set before run, pushed to LPs
  // Caller-thread-only round bookkeeping (never touched by LP jobs).
  std::uint64_t lp0_uid_counter_ = 0;      // lint:allow(lp-shared-state): caller-thread only
  SimTime gvt_ = 0.0;                      // lint:allow(lp-shared-state): caller-thread only
  std::uint64_t rounds_ = 0;               // lint:allow(lp-shared-state): caller-thread only
  std::uint64_t gvt_rounds_ = 0;           // lint:allow(lp-shared-state): caller-thread only
  std::vector<LinkMsg> drain_scratch_;     // lint:allow(lp-shared-state): caller-thread only
  std::vector<LinkMsg> staged_lp0_;        // lint:allow(lp-shared-state): caller-thread only
  std::uint64_t lp0_annihilations_ = 0;    // lint:allow(lp-shared-state): caller-thread only
};

}  // namespace opalsim::sim
