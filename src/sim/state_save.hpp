// Incremental per-LP state saving for the optimistic (Time Warp) engine.
//
// Optimistic execution runs events past the commit horizon and must be able
// to restore an LP's workload state exactly when a straggler or an
// anti-message invalidates the speculation (sim/optimistic_engine.hpp).
// The pieces here are the state-saving substrate:
//
//   StateSaver    the workload's contract: produce a self-contained byte
//                 image of the LP's mutable state and restore from one.
//                 Registered per LP via OptimisticEngine::set_state_saver.
//   RegionSaver   the common implementation — a fixed list of raw POD
//                 memory regions (e.g. a partition's node-state slice),
//                 saved by concatenation and restored by memcpy.
//   SnapshotPool  snapshot buffers carved from the owning LP's FramePool
//                 arena (header-routed deallocation, so commit-time frees
//                 from the caller thread are safe across round barriers)
//                 — steady-state speculation performs no heap allocation.
//
// Restore must be the exact inverse of save (the rollback property tests
// enforce restore(save(s)) == s byte-for-byte), and handlers must keep all
// mutable state they touch inside the registered image: anything outside it
// survives rollback and would diverge from the serial oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/pool.hpp"

namespace opalsim::sim {

/// Marker: speculative state saved/restored by the optimistic engine's
/// rollback machinery; instances are owned by exactly one LP.  The
/// lp-shared-state lint rule keys off this token.
#define OPALSIM_SPECULATIVE                                                \
  static_assert(true,                                                      \
                "speculative-state: saved/restored by the optimistic"      \
                " engine's rollback machinery; owned by exactly one LP")

/// Per-LP state-saving contract of the optimistic engine.
class StateSaver {
 public:
  virtual ~StateSaver() = default;

  /// Appends a complete, self-contained image of the LP's mutable workload
  /// state to `out` (does not clear `out`).
  virtual void save(std::vector<std::byte>& out) = 0;

  /// Restores the state from an image produced by save().  Must be the
  /// exact inverse: after restore, a re-run of the same events yields the
  /// same state and the same sends.
  virtual void restore(const std::byte* data, std::size_t size) = 0;
};

/// StateSaver over a fixed list of raw memory regions — the right tool when
/// an LP's workload state is a contiguous POD slice (bench_pdes registers
/// each LP's node-array block).  Regions are saved by concatenation in
/// registration order and restored by memcpy in the same order.
class RegionSaver final : public StateSaver {
 public:
  OPALSIM_SPECULATIVE;

  RegionSaver() = default;

  /// Registers a region.  The pointer must stay valid for the saver's
  /// lifetime; regions must not overlap.
  void add_region(void* data, std::size_t size);

  /// Total image size in bytes (sum of the registered regions).
  std::size_t image_size() const noexcept { return total_; }

  void save(std::vector<std::byte>& out) override;
  void restore(const std::byte* data, std::size_t size) override;

 private:
  struct Region {
    std::byte* data = nullptr;
    std::size_t size = 0;
  };
  std::vector<Region> regions_;
  std::size_t total_ = 0;
};

/// One saved state image.  The bytes live in the owning LP's FramePool
/// arena; SnapshotPool::recycle returns them.
struct Snapshot {
  OPALSIM_SPECULATIVE;
  std::byte* data = nullptr;
  std::size_t size = 0;

  bool valid() const noexcept { return data != nullptr; }
};

/// Allocates snapshot images from an LP's FramePool arena and recycles
/// them on commit/rollback.  The pool's block header routes deallocation
/// back to the arena even when the freeing thread differs from the
/// allocating one — the round barrier orders the accesses, same as the
/// Lp arena contract (sim/lp.hpp).
class SnapshotPool {
 public:
  OPALSIM_SPECULATIVE;

  explicit SnapshotPool(FramePool& arena) noexcept : arena_(&arena) {}
  SnapshotPool(const SnapshotPool&) = delete;
  SnapshotPool& operator=(const SnapshotPool&) = delete;

  /// Copies `bytes` into a fresh arena block.
  Snapshot make(const std::vector<std::byte>& bytes);

  /// Frees a snapshot's bytes and invalidates it.  Safe on an already
  /// recycled (invalid) snapshot.
  void recycle(Snapshot& snap) noexcept;

  std::uint64_t saves() const noexcept { return saves_; }
  std::uint64_t bytes_saved() const noexcept { return bytes_saved_; }
  std::uint64_t recycled() const noexcept { return recycled_; }

 private:
  FramePool* const arena_;
  std::uint64_t saves_ = 0;
  std::uint64_t bytes_saved_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace opalsim::sim
