#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>

#include "obs/trace.hpp"
#include "sim/optimistic_engine.hpp"
#include "util/env.hpp"
#include "util/fatal.hpp"
#include "util/run_tag.hpp"
#include "util/sync.hpp"

namespace opalsim::sim {

namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::infinity();

// LpRuntime adapter of the parallel engine's base LP (LP 0): local
// scheduling goes through the base queue, cross-LP posts go through the
// links after the same lookahead check every other LP performs.
class BaseLpRuntime final : public LpRuntime {
 public:
  explicit BaseLpRuntime(ParallelEngine* e) noexcept : e_(e) {}

  SimTime now() const noexcept override { return e_->now(); }
  LpId lp() const noexcept override { return 0; }
  std::uint32_t lps() const noexcept override { return e_->lps(); }
  SimTime lookahead() const noexcept override { return e_->lookahead(); }

  void schedule(SimTime t, LpHandler fn, void* ctx,
                std::uint64_t payload) override {
    e_->schedule_handler(t, fn, ctx, payload);
  }

  void post(LpId dst, SimTime t, LpHandler fn, void* ctx,
            std::uint64_t payload) override {
    if (dst == 0) {
      e_->schedule_handler(t, fn, ctx, payload);
      return;
    }
    const SimTime la = e_->lookahead();
    if (t < e_->now() + la) {
      if (audit::enabled()) {
        audit::fail(audit::Invariant::kLpLookahead,
                    "cross-LP post 0->" + std::to_string(dst) + " at t=" +
                        std::to_string(t) + " violates lookahead " +
                        std::to_string(la) + " from now=" +
                        std::to_string(e_->now()),
                    e_->now());
        return;  // only reached under ViolationCapture
      }
      util::fatal("sim",
                  "cross-LP post violates the lookahead contract (t=" +
                      std::to_string(t) + ", now=" +
                      std::to_string(e_->now()) + ", lookahead=" +
                      std::to_string(la) + ")");
    }
    e_->route(0, dst, t, fn, ctx, payload);
  }

 private:
  ParallelEngine* const e_;
};

}  // namespace

ParallelEngine::ParallelEngine(std::uint32_t lps, EventQueueKind queue_kind)
    : Engine(queue_kind),
      nlps_(std::max<std::uint32_t>(1, std::min(lps, kMaxLps))) {
  lps_.reserve(nlps_ > 0 ? nlps_ - 1 : 0);
  for (LpId k = 1; k < nlps_; ++k) {
    lps_.push_back(std::make_unique<Lp>(k, nlps_, queue_kind, this));
  }
  if (nlps_ > 1) {
    links_.resize(static_cast<std::size_t>(nlps_) * nlps_);
    for (LpId src = 0; src < nlps_; ++src) {
      for (LpId dst = 0; dst < nlps_; ++dst) {
        if (src == dst) continue;
        links_[static_cast<std::size_t>(src) * nlps_ + dst] =
            std::make_unique<InterLpLink>();
      }
    }
  }
}

ParallelEngine::~ParallelEngine() = default;

void ParallelEngine::set_lookahead_hint(SimTime lookahead) noexcept {
  if (lookahead < 0.0) lookahead = 0.0;
  lookahead_.store(lookahead, std::memory_order_relaxed);
}

Lp& ParallelEngine::lp_ref(LpId k) {
  if (k == 0 || k >= nlps_) {
    util::fatal("sim", "lp_ref: LP " + std::to_string(k) +
                           " out of range [1, " + std::to_string(nlps_) + ")");
  }
  return *lps_[k - 1];
}

std::uint64_t ParallelEngine::link_messages() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) {
    if (l) n += l->pushed();
  }
  return n;
}

std::uint64_t ParallelEngine::link_spills() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) {
    if (l) n += l->spilled();
  }
  return n;
}

void ParallelEngine::route(LpId src, LpId dst, SimTime t, LpHandler fn,
                           void* ctx, std::uint64_t payload) {
  if (src >= nlps_ || dst >= nlps_ || src == dst) {
    util::fatal("sim", "route: bad LP pair " + std::to_string(src) + "->" +
                           std::to_string(dst));
  }
  links_[static_cast<std::size_t>(src) * nlps_ + dst]->push(
      LinkMsg{t, 0, fn, ctx, payload, src});
  remote_posted_.store(true, std::memory_order_relaxed);
}

VT_PURE void ParallelEngine::post_handler(LpId lp, SimTime t, LpHandler fn,
                                          void* ctx, std::uint64_t payload) {
  if (lp == 0) {
    schedule_handler(t, fn, ctx, payload);
    return;
  }
  if (lp >= nlps_) {
    util::fatal("sim", "post_handler: LP " + std::to_string(lp) +
                           " out of range [0, " + std::to_string(nlps_) + ")");
  }
  lps_[lp - 1]->ingest(t, fn, ctx, payload);
}

std::uint64_t ParallelEngine::total_events_processed() const noexcept {
  std::uint64_t n = events_processed();
  for (const auto& lp : lps_) n += lp->events_processed();
  return n;
}

std::vector<LpClock> ParallelEngine::lp_clock_snaps() const {
  std::vector<LpClock> snaps;
  for (const auto& lp : lps_) {
    // Activity-gated: idle LPs contribute nothing, so a parallel run of a
    // pure-coroutine program snapshots byte-identically to the serial one.
    if (lp->events_processed() == 0 && lp->next_local_seq() == 0 &&
        lp->now() == 0.0) {
      continue;
    }
    snaps.push_back(LpClock{lp->lp(), lp->now(), lp->next_local_seq(),
                            lp->events_processed()});
  }
  return snaps;
}

void ParallelEngine::restore_lp_clocks(const std::vector<LpClock>& clocks) {
  for (const LpClock& c : clocks) {
    if (c.lp == 0 || c.lp >= nlps_) {
      util::fatal("sim", "restore_lp_clocks: snapshot LP " +
                             std::to_string(c.lp) + " not in this engine (" +
                             std::to_string(nlps_) + " LPs)");
    }
    Lp& lp = *lps_[c.lp - 1];
    lp.restore_clock(c.now);
    lp.restore_counters(c.next_seq, c.processed);
  }
}

void ParallelEngine::ensure_pool() {
  if (pool_) return;
  const unsigned hw = util::ThreadPool::default_threads();
  const unsigned width = std::max(
      1u, std::min(nlps_ - 1, hw > 1 ? hw - 1 : 1u));
  pool_ = std::make_unique<util::ThreadPool>(width);
}

VT_PURE std::uint64_t ParallelEngine::drain_lp0(SimTime cap,
                                                bool stop_on_remote_post) {
  BaseLpRuntime rt(this);
  std::uint64_t ran = 0;
  while (!queue_->empty() && queue_->next_time() <= cap) {
    ScheduledEvent ev = queue_->pop();
    if (audit::enabled()) audit_pop(ev.t);
    now_ = ev.t;
    ++processed_;
    ++ran;
    if (obs::enabled()) {
      obs::instant(obs::Cat::kEngine, "pop", ev.t, -1,
                   {"eseq", static_cast<double>(ev.seq)});
    }
    if (ev.fn != nullptr) {
      ev.fn(rt, ev.ctx, ev.payload);
    } else {
      ev.handle.resume();
    }
    if (stop_on_remote_post &&
        remote_posted_.load(std::memory_order_relaxed)) {
      break;
    }
  }
  return ran;
}

std::size_t ParallelEngine::drain_all_links() {
  if (nlps_ <= 1) return 0;
  std::size_t total = 0;
  for (LpId dst = 0; dst < nlps_; ++dst) {
    drain_scratch_.clear();
    for (LpId src = 0; src < nlps_; ++src) {
      if (src == dst) continue;
      links_[static_cast<std::size_t>(src) * nlps_ + dst]->drain(
          drain_scratch_);
    }
    if (drain_scratch_.empty()) continue;
    // Deterministic ingest order — this IS the tie order at equal t.
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const LinkMsg& a, const LinkMsg& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.src != b.src) return a.src < b.src;
                return a.src_seq < b.src_seq;
              });
    if (audit::enabled()) {
      // Global merged-order: the (t, src, src_seq) keys must be strictly
      // increasing — a duplicate key would make the merge ambiguous.
      for (std::size_t i = 1; i < drain_scratch_.size(); ++i) {
        const LinkMsg& a = drain_scratch_[i - 1];
        const LinkMsg& b = drain_scratch_[i];
        if (a.t == b.t && a.src == b.src && a.src_seq == b.src_seq) {
          audit::fail(audit::Invariant::kLpMergedOrder,
                      "duplicate (t, lp, seq) key in link merge: t=" +
                          std::to_string(b.t) + " src=" +
                          std::to_string(b.src),
                      b.t);
        }
      }
    }
    for (const LinkMsg& m : drain_scratch_) {
      if (dst == 0) {
        schedule_handler(m.t, m.fn, m.ctx, m.payload);
      } else {
        lps_[dst - 1]->ingest(m.t, m.fn, m.ctx, m.payload);
      }
    }
    total += drain_scratch_.size();
  }
  return total;
}

void ParallelEngine::merge_lp_traces(obs::TraceSink* caller_sink) {
  if (caller_sink == nullptr) return;
  for (auto& lp : lps_) {
    obs::MemorySink& buf = lp->trace_buffer();
    if (buf.events().empty()) continue;
    if (audit::enabled()) {
      // Per-LP streams must be time-monotone or the (t, lp, local seq)
      // merge key is not a faithful execution order.
      SimTime prev = -kNoEvent;
      for (const obs::TraceEvent& e : buf.events()) {
        if (e.t < prev) {
          audit::fail(audit::Invariant::kLpMergedOrder,
                      "LP " + std::to_string(lp->lp()) +
                          " trace stream went backwards at t=" +
                          std::to_string(e.t),
                      e.t);
        }
        prev = e.t;
      }
    }
    for (const obs::TraceEvent& e : buf.events()) caller_sink->record(e);
    buf.clear();
  }
}

void ParallelEngine::run_rounds(bool bounded, SimTime t_end) {
  obs::TraceSink* caller_sink = obs::current();
  const bool traced = caller_sink != nullptr;
  const std::uint64_t owner_tag = audit_run_tag_;
  for (;;) {
    drain_all_links();

    SimTime t_min = kNoEvent;
    std::uint32_t active = 0;
    const bool lp0_active = !queue_->empty();
    if (lp0_active) {
      t_min = queue_->next_time();
      ++active;
    }
    LpId solo_lp = 0;
    for (LpId k = 1; k < nlps_; ++k) {
      Lp& lp = *lps_[k - 1];
      if (!lp.has_events()) continue;
      ++active;
      solo_lp = k;
      const SimTime t = lp.next_time();
      if (t < t_min) t_min = t;
    }
    if (active == 0) break;
    if (bounded && t_min > t_end) break;
    ++rounds_;

    if (active == 1) {
      // Solo fast path: one LP owns every pending event and the links are
      // empty, so it may run unbounded — no other LP can be affected until
      // it posts cross-LP, at which point it stops and the loop falls back
      // to windowed rounds.
      remote_posted_.store(false, std::memory_order_relaxed);
      const SimTime cap = bounded ? t_end : kNoEvent;
      if (lp0_active) {
        drain_lp0(cap, /*stop_on_remote_post=*/true);
      } else {
        Lp& lp = *lps_[solo_lp - 1];
        lp.set_lookahead(lookahead());
        std::optional<obs::ScopedSink> sink;
        if (traced) sink.emplace(lp.trace_buffer());
        lp.advance_to(cap, &remote_posted_);
      }
      continue;
    }

    SimTime horizon = t_min + lookahead();
    if (bounded && horizon > t_end) horizon = t_end;

    ensure_pool();
    RoundLatch latch;
    int jobs = 0;
    for (LpId k = 1; k < nlps_; ++k) {
      if (lps_[k - 1]->has_events()) ++jobs;
    }
    latch.arm(jobs);
    for (LpId k = 1; k < nlps_; ++k) {
      Lp* lp = lps_[k - 1].get();
      if (!lp->has_events()) continue;
      lp->set_lookahead(lookahead());
      pool_->submit([lp, horizon, traced, owner_tag, &latch] {
        std::exception_ptr err;
        try {
          util::RunTagAdopt adopt(owner_tag);
          std::optional<obs::ScopedSink> sink;
          if (traced) sink.emplace(lp->trace_buffer());
          lp->advance_to(horizon);
        } catch (...) {
          err = std::current_exception();
        }
        latch.count_down(err);
      });
    }
    if (lp0_active) drain_lp0(horizon, /*stop_on_remote_post=*/false);
    latch.wait_and_rethrow();
  }
  merge_lp_traces(caller_sink);
}

VT_PURE void ParallelEngine::run() {
  run_rounds(/*bounded=*/false, 0.0);
  rethrow_pending_failure();
}

VT_PURE void ParallelEngine::run_until(SimTime t_end) {
  run_rounds(/*bounded=*/true, t_end);
  if (now_ < t_end) now_ = t_end;
  for (auto& lp : lps_) lp->advance_clock_to(t_end);
  rethrow_pending_failure();
}

// ---------------------------------------------------------------------------
// Engine factory (OPALSIM_ENGINE / OPALSIM_LPS)

namespace {

enum : int { kEngineUnset = -1 };

std::atomic<int> g_default_engine{kEngineUnset};
std::atomic<std::uint32_t> g_default_lps{0};  // 0 = not yet latched

HOST_ONLY EngineKind latch_engine_kind() {
  int cur = g_default_engine.load(std::memory_order_relaxed);
  if (cur != kEngineUnset) return static_cast<EngineKind>(cur);
  EngineKind kind = EngineKind::kSerial;
  const auto v = util::env_string("OPALSIM_ENGINE");
  if (v && *v == "parallel") {
    kind = EngineKind::kParallel;
  } else if (v && *v == "optimistic") {
    kind = EngineKind::kOptimistic;
  } else if (v && !v->empty() && *v != "serial") {
    util::fatal("sim",
                "OPALSIM_ENGINE must be serial, parallel or optimistic, "
                "got '" + *v + "'");
  }
  g_default_engine.store(static_cast<int>(kind), std::memory_order_relaxed);
  return kind;
}

HOST_ONLY std::uint32_t latch_lps() {
  std::uint32_t cur = g_default_lps.load(std::memory_order_relaxed);
  if (cur != 0) return cur;
  long v = util::env_long("OPALSIM_LPS", 1);
  if (v < 1) v = 1;
  if (v > static_cast<long>(ParallelEngine::kMaxLps)) {
    v = ParallelEngine::kMaxLps;
  }
  const auto lps = static_cast<std::uint32_t>(v);
  g_default_lps.store(lps, std::memory_order_relaxed);
  return lps;
}

}  // namespace

EngineKind default_engine() noexcept { return latch_engine_kind(); }

void set_default_engine(EngineKind kind) noexcept {
  g_default_engine.store(static_cast<int>(kind), std::memory_order_relaxed);
}

std::uint32_t default_lps() noexcept { return latch_lps(); }

void set_default_lps(std::uint32_t lps) noexcept {
  if (lps < 1) lps = 1;
  if (lps > ParallelEngine::kMaxLps) lps = ParallelEngine::kMaxLps;
  g_default_lps.store(lps, std::memory_order_relaxed);
}

std::unique_ptr<Engine> make_engine(EngineKind kind, std::uint32_t lps) {
  if (kind == EngineKind::kParallel) {
    return std::make_unique<ParallelEngine>(lps);
  }
  if (kind == EngineKind::kOptimistic) {
    return std::make_unique<OptimisticEngine>(lps);
  }
  return std::make_unique<Engine>();
}

std::unique_ptr<Engine> make_engine() {
  return make_engine(default_engine(), default_lps());
}

}  // namespace opalsim::sim
