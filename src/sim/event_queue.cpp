#include "sim/event_queue.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "util/env.hpp"

namespace opalsim::sim {

namespace {

bool event_less(const ScheduledEvent& a, const ScheduledEvent& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  return a.seq < b.seq;
}

// ---------------------------------------------------------------------------
// Reference implementation: the seed engine's binary heap.  This file (with
// event_queue.hpp) is the only place in src/sim allowed to name
// std::priority_queue — the determinism lint enforces that every other use
// goes through the EventQueue interface.

class BinaryHeapEventQueue final : public EventQueue {
 public:
  const char* name() const noexcept override { return "heap"; }

 protected:
  struct Greater {
    bool operator()(const ScheduledEvent& a,
                    const ScheduledEvent& b) const noexcept {
      return event_less(b, a);
    }
  };

  void do_push(const ScheduledEvent& ev) override { queue_.push(ev); }

  ScheduledEvent do_pop() override {
    ScheduledEvent ev = queue_.top();
    queue_.pop();
    return ev;
  }

  const ScheduledEvent& do_peek() override { return queue_.top(); }

 private:
  std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>, Greater>
      queue_;
};

// ---------------------------------------------------------------------------
// Ladder queue.  Three bands, nearest first:
//
//   bottom_  sorted ascending by (t, seq), served by head index — the only
//            band pops touch.  Kept small (~kBottomTarget events) so the
//            occasional sorted insert is a short memmove.
//   rung     fixed-width time buckets spanning [rung_start_, far_start_),
//            built by splitting the far band when the bottom drains.
//            Buckets are unsorted; a bucket is sorted only when it becomes
//            the bottom.  Bucket membership is a pure function of t
//            (monotone in t), so events can never be ordered incorrectly
//            across buckets, floating-point rounding included.
//   far_     unsorted append-only vector holding everything with
//            t >= far_start_ — the common case for a DES push, making the
//            hot-path push O(1).
//
// Routing invariant: far_start_ only ever increases, and an event is pushed
// into the nearest band whose range covers its timestamp.  Pops therefore
// see the exact global (t, seq) order: bottom < remaining buckets < far,
// with each bucket sorted before serving.
//
// All three bands live in reused std::vectors: after warm-up the queue
// performs no allocation per event (the pooled analogue of free-listing
// scheduled-event nodes).

class LadderEventQueue final : public EventQueue {
 public:
  const char* name() const noexcept override { return "ladder"; }

 protected:
  void do_push(const ScheduledEvent& ev) override {
    if (ev.t >= far_start_) {
      far_.push_back(ev);
      return;
    }
    if (rung_active_) {
      const std::size_t idx = bucket_index(ev.t);
      if (idx >= next_bucket_) {
        buckets_[idx].push_back(ev);
        return;
      }
    }
    // Below every unconsumed bucket: belongs in the sorted bottom band.  A
    // new event's seq exceeds every pending seq, so its slot is at or after
    // the head — searching the live suffix suffices.
    const auto it = std::upper_bound(bottom_.begin() + head_, bottom_.end(),
                                     ev, &event_less);
    bottom_.insert(it, ev);
  }

  ScheduledEvent do_pop() override {
    refill();
    ScheduledEvent ev = bottom_[head_++];
    if (head_ == bottom_.size()) {
      bottom_.clear();
      head_ = 0;
    }
    return ev;
  }

  const ScheduledEvent& do_peek() override {
    refill();
    return bottom_[head_];
  }

 private:
  static constexpr std::size_t kBottomTarget = 64;
  static constexpr std::size_t kMaxBuckets = 1024;

  std::size_t bucket_index(SimTime t) const noexcept {
    const double d = (t - rung_start_) / bucket_width_;
    if (d <= 0.0) return 0;
    const auto idx = static_cast<std::size_t>(d);
    return idx < buckets_.size() ? idx : buckets_.size() - 1;
  }

  /// Ensures the bottom band holds the next live event.  Precondition
  /// (enforced by EventQueue::pop): at least one event is pending.
  void refill() {
    while (head_ == bottom_.size()) {
      bottom_.clear();
      head_ = 0;
      if (rung_active_) {
        while (next_bucket_ < buckets_.size() &&
               buckets_[next_bucket_].empty()) {
          ++next_bucket_;
        }
        if (next_bucket_ < buckets_.size()) {
          bottom_.swap(buckets_[next_bucket_]);
          ++next_bucket_;
          std::sort(bottom_.begin(), bottom_.end(), &event_less);
          continue;
        }
        rung_active_ = false;
      }
      assert(!far_.empty() && "refill on an empty queue");
      split_far();
    }
  }

  /// Splits the far band: all of it into a fresh rung (one sort-free O(n)
  /// distribution pass), or straight into the bottom when the band is small
  /// or spans a single timestamp.
  void split_far() {
    SimTime fmin = far_.front().t;
    SimTime fmax = fmin;
    for (const ScheduledEvent& ev : far_) {
      if (ev.t < fmin) fmin = ev.t;
      if (ev.t > fmax) fmax = ev.t;
    }
    // The new threshold sits just above the far band's maximum so that later
    // pushes at exactly fmax still land inside the rung/bottom, not in far_.
    const SimTime threshold =
        std::nextafter(fmax, std::numeric_limits<SimTime>::infinity());

    const std::size_t want_buckets = far_.size() / kBottomTarget;
    if (want_buckets < 2 || fmax == fmin ||
        (fmax - fmin) / static_cast<double>(std::min(
                            want_buckets, kMaxBuckets)) <= 0.0) {
      bottom_.swap(far_);
      std::sort(bottom_.begin(), bottom_.end(), &event_less);
      far_start_ = threshold;
      rung_active_ = false;
      return;
    }

    const std::size_t nb = std::min(want_buckets, kMaxBuckets);
    if (buckets_.size() < nb) buckets_.resize(nb);
    for (auto& b : buckets_) b.clear();
    buckets_.resize(nb);
    rung_start_ = fmin;
    bucket_width_ = (fmax - fmin) / static_cast<double>(nb);
    far_start_ = threshold;
    rung_active_ = true;
    next_bucket_ = 0;
    for (const ScheduledEvent& ev : far_) {
      buckets_[bucket_index(ev.t)].push_back(ev);
    }
    far_.clear();
  }

  std::vector<ScheduledEvent> bottom_;
  std::size_t head_ = 0;
  std::vector<std::vector<ScheduledEvent>> buckets_;
  std::size_t next_bucket_ = 0;
  SimTime rung_start_ = 0.0;
  double bucket_width_ = 1.0;
  bool rung_active_ = false;
  std::vector<ScheduledEvent> far_;
  SimTime far_start_ = -std::numeric_limits<SimTime>::infinity();
};

EventQueueKind initial_default() {
  if (const auto v = util::env_string("OPALSIM_EVENT_QUEUE")) {
    if (*v == "heap") return EventQueueKind::kHeap;
  }
  return EventQueueKind::kLadder;
}

std::atomic<EventQueueKind>& default_kind() noexcept {
  static std::atomic<EventQueueKind> kind{initial_default()};
  return kind;
}

}  // namespace

EventQueueKind default_event_queue() noexcept {
  return default_kind().load(std::memory_order_relaxed);
}

void set_default_event_queue(EventQueueKind kind) noexcept {
  default_kind().store(kind, std::memory_order_relaxed);
}

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind) {
  if (kind == EventQueueKind::kHeap)
    return std::make_unique<BinaryHeapEventQueue>();
  return std::make_unique<LadderEventQueue>();
}

}  // namespace opalsim::sim
