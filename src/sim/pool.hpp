// Slab/free-list allocator for the DES hot path: coroutine frames (every
// Task<T> and engine root frame), per-spawn ProcessState blocks, and any
// other small allocation the engine makes per event.
//
// Design:
//  - One FramePool per thread (FramePool::local()).  The engine is strictly
//    single-threaded — a run and every coroutine frame it creates live on
//    one thread (sweep workers each run whole engines) — so the per-thread
//    pool is a per-engine-run arena with zero synchronization.
//  - Blocks are carved from 64 KiB slabs in 64-byte size classes; freed
//    blocks go on a per-class free list and are reused LIFO (warm cache).
//  - Every block is prefixed by a 16-byte header recording the owning pool
//    and size class, so deallocation routes to the right free list even when
//    the global enable flag changed in between, and oversized or
//    pool-disabled allocations (header pool = nullptr) fall back to the
//    global heap transparently.
//  - Slabs are released when the pool (thread) dies; blocks must therefore
//    be freed on the thread that allocated them.  That holds by the engine's
//    single-thread discipline; a debug assert catches violations.
//
// OPALSIM_FRAME_POOL=0 (or off/false/no) disables pooling process-wide —
// the reference configuration bench_des_core compares against.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace opalsim::sim {

class FramePool {
 public:
  struct Stats {
    std::uint64_t reused = 0;       ///< served from a free list
    std::uint64_t carved = 0;       ///< served fresh from a slab
    std::uint64_t fallback = 0;     ///< oversize/disabled: global heap
    std::uint64_t freed = 0;        ///< pooled blocks returned
    std::uint64_t outstanding = 0;  ///< live pooled blocks
    std::uint64_t slab_bytes = 0;   ///< total slab memory reserved
    /// Fraction of pooled allocations served without touching a slab.
    double hit_rate() const noexcept {
      const double total = static_cast<double>(reused + carved);
      return total > 0.0 ? static_cast<double>(reused) / total : 0.0;
    }
  };

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool();

  /// The calling thread's pool (per-engine-run arena; see header comment).
  static FramePool& local();

  /// Allocates `n` bytes from the calling thread's pool (16-byte aligned).
  static void* allocate_raw(std::size_t n) { return local().allocate(n); }

  /// Allocates from THIS pool instance (16-byte aligned).  Used by per-LP
  /// arenas (sim/lp.hpp): an Lp owns a private pool that is touched by one
  /// thread at a time, with round barriers ordering the handoffs.  Free
  /// with the static deallocate() — the header routes back here.
  void* allocate(std::size_t n);

  /// Frees a block from allocate_raw, routing via the block header.  Must
  /// run on the allocating thread for pooled blocks (debug-asserted).
  static void deallocate(void* p) noexcept;

  /// Process-wide pooling switch, initialized from OPALSIM_FRAME_POOL.
  /// Affects future allocations only; outstanding blocks free correctly
  /// either way (header routing).
  static bool enabled() noexcept;
  static void set_enabled(bool on) noexcept;

  const Stats& stats() const noexcept { return stats_; }
  /// Snapshot of the calling thread's pool counters.
  static Stats local_stats() { return local().stats_; }

 private:
  struct Header {
    FramePool* pool = nullptr;      ///< nullptr = global-heap fallback
    std::uint32_t size_class = 0;
    std::uint32_t owner_check = 0;  ///< debug: low bits of the owner pool
  };
  static constexpr std::size_t kHeaderBytes = 16;  // preserves 16B alignment
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 64;      // pooled up to 4 KiB
  static constexpr std::size_t kSlabBytes = std::size_t{64} * 1024;

  std::vector<void*> free_lists_[kClasses];
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  std::size_t slab_used_ = kSlabBytes;  // forces a slab on first carve
  Stats stats_;
};

/// Mixin giving a coroutine promise_type pooled frame allocation.  The
/// compiler routes the whole frame (promise + locals + spilled state)
/// through these operators.
struct PooledFrame {
  static void* operator new(std::size_t n) {
    return FramePool::allocate_raw(n);
  }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }
};

/// Minimal allocator adapter over the thread's FramePool — used to
/// allocate_shared the per-spawn ProcessState so control block and state
/// share one pooled allocation.
template <typename T>
struct PoolAllocator {
  using value_type = T;
  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(runtime/explicit)
  T* allocate(std::size_t n) {
    return static_cast<T*>(FramePool::allocate_raw(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { FramePool::deallocate(p); }
  friend bool operator==(const PoolAllocator&, const PoolAllocator&) noexcept {
    return true;
  }
};

}  // namespace opalsim::sim
