#include "sim/fault.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace opalsim::sim {

void FaultSpec::add_flap(double t_start, double t_end, double period_s,
                         double bw_factor, double lat_factor) {
  if (period_s <= 0.0)
    throw std::invalid_argument("FaultSpec::add_flap: period must be > 0");
  for (double t = t_start; t < t_end; t += 2.0 * period_s) {
    LinkDegradation d;
    d.t_start = t;
    d.t_end = t + period_s < t_end ? t + period_s : t_end;
    d.bandwidth_factor = bw_factor;
    d.latency_factor = lat_factor;
    degradations.push_back(d);
  }
}

namespace {

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  // One SplitMix64 step per stream id gives decorrelated sub-seeds.
  util::SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return sm.next();
}

}  // namespace

FaultModel::FaultModel(FaultSpec spec)
    : spec_(std::move(spec)),
      enabled_(spec_.enabled()),
      message_faults_(spec_.drop_rate > 0.0 || spec_.duplicate_rate > 0.0 ||
                      spec_.corrupt_rate > 0.0),
      message_rng_(stream_seed(spec_.seed, 1)),
      corrupt_rng_(stream_seed(spec_.seed, 2)),
      stall_rng_(stream_seed(spec_.seed, 3)) {
  const double total =
      spec_.drop_rate + spec_.duplicate_rate + spec_.corrupt_rate;
  if (spec_.drop_rate < 0.0 || spec_.duplicate_rate < 0.0 ||
      spec_.corrupt_rate < 0.0 || total > 1.0)
    throw std::invalid_argument(
        "FaultModel: message fault rates must be >= 0 and sum to <= 1");
  if (spec_.daemon_stall_rate < 0.0 || spec_.daemon_stall_rate > 1.0)
    throw std::invalid_argument("FaultModel: daemon_stall_rate out of [0,1]");
}

MessageFault FaultModel::next_message_fault(int /*src*/, int /*dst*/) {
  if (!message_faults_) return MessageFault::None;
  ++counters_.messages_seen;
  // One draw partitions [0,1) into [drop | duplicate | corrupt | none].
  const double u = message_rng_.uniform();
  if (u < spec_.drop_rate) {
    ++counters_.dropped;
    return MessageFault::Drop;
  }
  if (u < spec_.drop_rate + spec_.duplicate_rate) {
    ++counters_.duplicated;
    return MessageFault::Duplicate;
  }
  if (u < spec_.drop_rate + spec_.duplicate_rate + spec_.corrupt_rate) {
    ++counters_.corrupted;
    return MessageFault::Corrupt;
  }
  return MessageFault::None;
}

std::size_t FaultModel::next_corrupt_position(std::size_t payload_bytes) {
  if (payload_bytes == 0) return 0;
  return static_cast<std::size_t>(corrupt_rng_.below(payload_bytes));
}

double FaultModel::next_daemon_stall(double now) {
  if (spec_.daemon_stall_rate <= 0.0 || spec_.daemon_stall_s <= 0.0)
    return 0.0;
  if (stall_rng_.uniform() < spec_.daemon_stall_rate) {
    ++counters_.daemon_stalls;
    obs::instant(obs::Cat::kFault, "stall", now, -1,
                 {"seconds", spec_.daemon_stall_s});
    return spec_.daemon_stall_s;
  }
  return 0.0;
}

double FaultModel::bandwidth_factor(double now) const noexcept {
  double f = 1.0;
  for (const auto& d : spec_.degradations) {
    if (now >= d.t_start && now < d.t_end) f *= d.bandwidth_factor;
  }
  return f > 0.0 ? f : 1e-12;  // a fully-dead window still makes progress
}

double FaultModel::latency_factor(double now) const noexcept {
  double f = 1.0;
  for (const auto& d : spec_.degradations) {
    if (now >= d.t_start && now < d.t_end) f *= d.latency_factor;
  }
  return f;
}

bool FaultModel::node_dead(int node, double now) const noexcept {
  for (const auto& nf : spec_.node_faults) {
    if (nf.node == node && now >= nf.t_fail) return true;
  }
  return false;
}

void FaultModel::kill_node(int node, double t) {
  spec_.node_faults.push_back(NodeFault{node, t});
  enabled_ = true;
  obs::instant(obs::Cat::kFault, "kill", t, node);
}

}  // namespace opalsim::sim
