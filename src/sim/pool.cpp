#include "sim/pool.hpp"

#include <atomic>
#include <new>

#include "util/env.hpp"

namespace opalsim::sim {

namespace {

bool initial_enabled() {
  if (const auto v = util::env_string("OPALSIM_FRAME_POOL")) {
    if (*v == "0" || *v == "off" || *v == "false" || *v == "no") return false;
  }
  return true;
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

}  // namespace

FramePool::~FramePool() {
  // Slabs are released wholesale.  Outstanding pooled blocks at this point
  // would dangle on their next free — the single-thread discipline makes
  // this unreachable in correct code (every frame is destroyed before its
  // run's thread exits); assert so a violation fails loudly in debug.
  assert(stats_.outstanding == 0 &&
         "FramePool destroyed with live coroutine frames");
}

FramePool& FramePool::local() {
  static thread_local FramePool pool;
  return pool;
}

bool FramePool::enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void FramePool::set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void* FramePool::allocate(std::size_t n) {
  const std::size_t total = n + kHeaderBytes;
  if (!enabled() || total > kClasses * kGranule) {
    ++stats_.fallback;
    auto* raw = static_cast<unsigned char*>(::operator new(total));
    auto* h = new (raw) Header;
    h->pool = nullptr;
    return raw + kHeaderBytes;
  }
  const std::size_t cls = (total + kGranule - 1) / kGranule - 1;
  const std::size_t block = (cls + 1) * kGranule;
  unsigned char* raw;
  if (!free_lists_[cls].empty()) {
    raw = static_cast<unsigned char*>(free_lists_[cls].back());
    free_lists_[cls].pop_back();
    ++stats_.reused;
  } else {
    if (slab_used_ + block > kSlabBytes) {
      slabs_.push_back(std::make_unique<unsigned char[]>(kSlabBytes));
      slab_used_ = 0;
      stats_.slab_bytes += kSlabBytes;
    }
    raw = slabs_.back().get() + slab_used_;
    slab_used_ += block;
    ++stats_.carved;
  }
  auto* h = new (raw) Header;
  h->pool = this;
  h->size_class = static_cast<std::uint32_t>(cls);
  ++stats_.outstanding;
  return raw + kHeaderBytes;
}

void FramePool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  auto* raw = static_cast<unsigned char*>(p) - kHeaderBytes;
  const Header* h = reinterpret_cast<const Header*>(raw);
  FramePool* pool = h->pool;
  if (pool == nullptr) {
    ::operator delete(raw);
    return;
  }
  pool->free_lists_[h->size_class].push_back(raw);
  ++pool->stats_.freed;
  --pool->stats_.outstanding;
}

}  // namespace opalsim::sim
