// Unbounded FIFO channel.  put() is immediate; get() suspends until an item
// is available.  Delivery is direct-handoff: a put() with parked getters
// moves the value into the oldest getter's slot, so items can never be
// "stolen" between wake-up and resumption.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace opalsim::sim {

template <typename T>
class Queue {
 public:
  explicit Queue(Engine& engine) noexcept : engine_(&engine) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

  void put(T value) {
    if (!getters_.empty()) {
      GetAwaiter* g = getters_.front();
      getters_.pop_front();
      g->slot.emplace(std::move(value));
      engine_->schedule_now(g->handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  // Owns the taken item in an optional<T> slot; the awaiter is the parked
  // getter node itself (getters_ points at it).
  // lint:allow(awaiter-trivial-dtor): owning awaiter by design (see above)
  struct GetAwaiter {
    Queue* queue;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() noexcept {
      if (!queue->items_.empty()) {
        slot.emplace(std::move(queue->items_.front()));
        queue->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      queue->getters_.push_back(this);
    }
    T await_resume() {
      assert(slot.has_value());
      return std::move(*slot);
    }
  };

  /// Awaitable receive.
  GetAwaiter get() noexcept { return GetAwaiter{this, std::nullopt, {}}; }

  /// Non-blocking receive; nullopt when empty.
  std::optional<T> try_get() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> v(std::move(items_.front()));
    items_.pop_front();
    return v;
  }

 private:
  Engine* engine_;
  std::deque<T> items_;
  std::deque<GetAwaiter*> getters_;
};

}  // namespace opalsim::sim
