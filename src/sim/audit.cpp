#include "sim/audit.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/env.hpp"
#include "util/sync.hpp"

namespace opalsim::sim::audit {

namespace {

// The enable flag is process-global and read on engine hot paths; relaxed
// atomics keep the read race-free under TSan without fencing cost.
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_latched{false};

// Capture state (test hook).  A mutex rather than atomics: violations are
// cold, and capture accessors need a consistent (count, invariant, report)
// triple even when sweep workers report concurrently.
util::Mutex g_capture_mutex;
bool g_capturing GUARDED_BY(g_capture_mutex) = false;
int g_capture_count GUARDED_BY(g_capture_mutex) = 0;
Invariant g_capture_last GUARDED_BY(g_capture_mutex) =
    Invariant::kTimeMonotonic;
std::string g_capture_report GUARDED_BY(g_capture_mutex);

void latch_from_env() noexcept {
  bool expected = false;
  if (!g_latched.compare_exchange_strong(expected, true)) return;
  // OPALSIM_AUDIT=1/0 wins; unset defaults to on only in debug builds,
  // where the cost of the checks is already accepted.
#ifdef NDEBUG
  const long fallback = 0;
#else
  const long fallback = 1;
#endif
  g_enabled.store(util::env_long("OPALSIM_AUDIT", fallback) != 0,
                  std::memory_order_relaxed);
}

}  // namespace

const char* invariant_name(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kTimeMonotonic:
      return "time-monotonic";
    case Invariant::kChannelFifo:
      return "channel-fifo";
    case Invariant::kMailboxConsumer:
      return "mailbox-consumer";
    case Invariant::kRunIsolation:
      return "run-isolation";
    case Invariant::kResourceBalance:
      return "resource-balance";
    case Invariant::kLpLookahead:
      return "lp-lookahead";
    case Invariant::kLpMergedOrder:
      return "lp-merged-order";
    case Invariant::kCommittedTime:
      return "committed-time";
    case Invariant::kAntiPairing:
      return "anti-pairing";
    case Invariant::kMailboxUnconsume:
      return "mailbox-unconsume";
  }
  return "unknown";
}

bool enabled() noexcept {
  latch_from_env();
  return g_enabled.load(std::memory_order_relaxed);
}

void fail(Invariant inv, const std::string& detail, double vtime) {
  std::string report = "opalsim audit violation\n";
  report += "  invariant: ";
  report += invariant_name(inv);
  report += "\n  detail:    " + detail + "\n";
  if (vtime >= 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "  vtime:     %.9g s\n", vtime);
    report += buf;
  }
  {
    util::ScopedLock lk(g_capture_mutex);
    if (g_capturing) {
      ++g_capture_count;
      g_capture_last = inv;
      g_capture_report = report;
      return;
    }
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

ScopedEnable::ScopedEnable(bool on) noexcept {
  latch_from_env();
  prev_ = g_enabled.exchange(on, std::memory_order_relaxed);
}

ScopedEnable::~ScopedEnable() {
  g_enabled.store(prev_, std::memory_order_relaxed);
}

ViolationCapture::ViolationCapture() : enable_(true) {
  util::ScopedLock lk(g_capture_mutex);
  g_capturing = true;
  g_capture_count = 0;
  g_capture_report.clear();
}

ViolationCapture::~ViolationCapture() {
  util::ScopedLock lk(g_capture_mutex);
  g_capturing = false;
}

int ViolationCapture::count() const {
  util::ScopedLock lk(g_capture_mutex);
  return g_capture_count;
}

Invariant ViolationCapture::last_invariant() const {
  util::ScopedLock lk(g_capture_mutex);
  return g_capture_last;
}

std::string ViolationCapture::last_report() const {
  util::ScopedLock lk(g_capture_mutex);
  return g_capture_report;
}

void check_run(std::uint64_t owner_tag, double vtime) {
  if (!enabled()) return;
  const std::uint64_t here = util::current_run_tag();
  if (owner_tag != here) {
    fail(Invariant::kRunIsolation,
         "engine owned by run scope " + std::to_string(owner_tag) +
             " driven from run scope " + std::to_string(here),
         vtime);
  }
}

}  // namespace opalsim::sim::audit
