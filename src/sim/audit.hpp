// Virtual-time audit checker — a runtime happens-before verifier for the
// DES engine and the middleware stack above it.
//
// The whole methodology of the paper rests on trustworthy per-phase
// accounting: a single event resumed at a decreasing virtual time, a message
// delivered out of FIFO order, or a pooled sweep leaking state between runs
// silently invalidates every calibrated coefficient.  The auditor enforces
// those invariants mechanically:
//
//   time-monotonic     events never scheduled in the virtual past; the
//                      engine clock never moves backwards across resumes
//   channel-fifo       per (src, dst) channel, delivered message sequence
//                      numbers strictly increase; equal seqs (duplicates)
//                      and seq gaps (drops) are legal only while the
//                      platform's FaultModel is active
//   mailbox-consumer   a task mailbox has exactly one consuming task
//   run-isolation      an engine is only driven from the run scope that
//                      created it (pooled sweeps tag each index with a
//                      fresh run id via audit::RunScope)
//   resource-balance   every Resource unit acquired is released and no
//                      waiter is still parked when the resource dies
//   lp-lookahead       a cross-LP post must arrive at least one lookahead
//                      window after the sender's local clock — the
//                      conservative synchronization contract of the
//                      parallel engine (sim/parallel_engine.hpp)
//   lp-merged-order    per-LP event/trace streams are time-monotone and
//                      the (t, lp, local seq) keys of the merged stream
//                      are strictly increasing — the determinism contract
//                      of the observation-boundary merge
//   committed-time     the optimistic engine never rolls back below the
//                      commit horizon (GVT): once an event is committed
//                      and fossil-collected no straggler or anti-message
//                      may target its past
//   anti-pairing       every anti-message annihilates exactly one matching
//                      positive (same uid); an unmatched anti means the
//                      rollback machinery emitted or routed a cancellation
//                      for a message that never existed
//   mailbox-unconsume  rollback returns to a mailbox only messages that
//                      were actually consumed from it, by the same owner:
//                      unconsumes never outnumber consumes
//
// Checks are observation-only: enabling the auditor never changes virtual
// time, RNG consumption or any output byte.  A violation aborts the process
// with a structured report (invariant name, detail, virtual time); tests
// install a ViolationCapture to record the report instead.
//
// Enablement: OPALSIM_AUDIT=1 forces on, OPALSIM_AUDIT=0 forces off;
// unset defaults to on in debug (!NDEBUG) builds and off otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "util/run_tag.hpp"

namespace opalsim::sim::audit {

enum class Invariant {
  kTimeMonotonic,
  kChannelFifo,
  kMailboxConsumer,
  kRunIsolation,
  kResourceBalance,
  kLpLookahead,
  kLpMergedOrder,
  kCommittedTime,
  kAntiPairing,
  kMailboxUnconsume,
};

/// Stable kebab-case name used in violation reports ("time-monotonic", ...).
const char* invariant_name(Invariant inv) noexcept;

/// True when audit checks are active.  First call latches the OPALSIM_AUDIT
/// environment variable (unset: on in !NDEBUG builds, off otherwise).
bool enabled() noexcept;

/// Reports a violation: formats a structured report and hands it to the
/// installed handler (default: write to stderr and abort).  `detail` is a
/// one-line human-readable description; `vtime` is the current virtual time
/// of the engine involved (pass a negative value when not applicable).
[[gnu::cold]] void fail(Invariant inv, const std::string& detail,
                        double vtime = -1.0);

/// Forces the auditor on/off for the current scope (tests; also used by the
/// OPALSIM_AUDIT-equivalence test to compare audited vs unaudited runs in
/// one process).  Restores the previous state on destruction.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) noexcept;
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

/// Test hook: while alive, violations are recorded here instead of aborting,
/// and the auditor is forcibly enabled.  Not reentrant; guarded by a mutex
/// so pooled-sweep workers can report concurrently.
class ViolationCapture {
 public:
  ViolationCapture();
  ~ViolationCapture();
  ViolationCapture(const ViolationCapture&) = delete;
  ViolationCapture& operator=(const ViolationCapture&) = delete;

  /// Number of violations captured so far.
  int count() const;
  /// Invariant of the most recent violation (valid when count() > 0).
  Invariant last_invariant() const;
  /// Full structured report of the most recent violation.
  std::string last_report() const;

 private:
  ScopedEnable enable_;
};

// -- run-isolation tagging ---------------------------------------------------

/// The run id tagged on the current thread (0 = the default scope).  The
/// tagging substrate lives in util/run_tag.hpp so the sweep thread pool can
/// open a scope per index without depending on sim.
inline std::uint64_t current_run() noexcept {
  return util::current_run_tag();
}

/// RAII: tags the current thread with a fresh nonzero run id.  The sweep
/// runner (util::parallel_for_indexed) opens one per index so every DES run
/// in a pooled sweep lives in its own scope; Engine latches the scope at
/// construction and refuses to be driven from any other.
using RunScope = util::RunTagScope;

/// Checks that the calling thread's run scope matches `owner_tag` (the scope
/// the engine was created in).  No-op when the auditor is disabled.
void check_run(std::uint64_t owner_tag, double vtime);

// -- per-object audit state --------------------------------------------------

/// Single-consumer discipline for one mailbox.  The first consuming id is
/// adopted as the owner (or set explicitly by the PVM layer at spawn);
/// any later consume under a different id is a violation.  Ids are task
/// tids offset by +1 so that 0 means "unowned".
struct MailboxDiscipline {
  std::uint64_t owner = 0;
  /// LP the consuming task executes on, offset by +1 (0 = untagged).  Set
  /// by the PVM layer from its owner partition (pvm::PvmSystem); consuming
  /// a mailbox from a different LP means a task's state crossed an LP
  /// boundary outside an inter-LP link.
  std::uint64_t owner_lp = 0;
  /// Rollback-balance accounting (mailbox-unconsume): every unconsume — a
  /// rolled-back receive returning its message to the mailbox head — must
  /// pair with an earlier consume by the same owner.
  std::uint64_t consumes = 0;
  std::uint64_t unconsumes = 0;

  void set_owner(std::uint64_t id) noexcept { owner = id + 1; }
  void set_owner_lp(std::uint64_t lp) noexcept { owner_lp = lp + 1; }

  void note_consume_lp(std::uint64_t lp, double vtime) {
    if (!enabled() || owner_lp == 0) return;
    if (owner_lp != lp + 1) {
      fail(Invariant::kMailboxConsumer,
           "mailbox partitioned to LP " + std::to_string(owner_lp - 1) +
               " consumed from LP " + std::to_string(lp),
           vtime);
    }
  }

  void note_consume(std::uint64_t id, double vtime) {
    if (!enabled()) return;
    ++consumes;
    if (owner == 0) {
      owner = id + 1;
      return;
    }
    if (owner != id + 1) {
      fail(Invariant::kMailboxConsumer,
           "mailbox owned by consumer " + std::to_string(owner - 1) +
               " consumed by " + std::to_string(id),
           vtime);
    }
  }

  /// A rollback returned one consumed message to the mailbox.  Violations:
  /// more unconsumes than consumes (the rollback invented a message), or an
  /// unconsume by someone other than the owning consumer.
  void note_unconsume(std::uint64_t id, double vtime) {
    if (!enabled()) return;
    if (unconsumes >= consumes) {
      fail(Invariant::kMailboxUnconsume,
           "mailbox unconsume without a matching consume (consumes=" +
               std::to_string(consumes) + ", unconsumes=" +
               std::to_string(unconsumes) + ")",
           vtime);
      return;  // only reached under ViolationCapture
    }
    if (owner != 0 && owner != id + 1) {
      fail(Invariant::kMailboxUnconsume,
           "mailbox owned by consumer " + std::to_string(owner - 1) +
               " unconsumed by " + std::to_string(id),
           vtime);
      return;  // only reached under ViolationCapture
    }
    ++unconsumes;
  }
};

}  // namespace opalsim::sim::audit
