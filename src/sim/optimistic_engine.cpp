#include "sim/optimistic_engine.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>

#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/fatal.hpp"
#include "util/run_tag.hpp"
#include "util/sync.hpp"

namespace opalsim::sim {

namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::infinity();

// LpRuntime adapter of the optimistic engine's base LP (LP 0).  LP 0 only
// ever executes committed work (it advances inclusively to GVT on the
// caller thread), so its sends need no rollback bookkeeping — they carry a
// fresh uid purely so receiver-side anti-pairing state stays uniform.
// There is no lookahead contract: optimistic posts may target any t >= now.
class BaseOptRuntime final : public LpRuntime {
 public:
  explicit BaseOptRuntime(OptimisticEngine* e) noexcept : e_(e) {}

  SimTime now() const noexcept override { return e_->now(); }
  LpId lp() const noexcept override { return 0; }
  std::uint32_t lps() const noexcept override { return e_->lps(); }
  SimTime lookahead() const noexcept override { return 0.0; }

  void schedule(SimTime t, LpHandler fn, void* ctx,
                std::uint64_t payload) override {
    e_->schedule_handler(t, fn, ctx, payload);
  }

  void post(LpId dst, SimTime t, LpHandler fn, void* ctx,
            std::uint64_t payload) override {
    if (dst == 0) {
      e_->schedule_handler(t, fn, ctx, payload);
      return;
    }
    if (t < e_->now()) {
      if (audit::enabled()) {
        audit::fail(audit::Invariant::kTimeMonotonic,
                    "cross-LP post 0->" + std::to_string(dst) + " at t=" +
                        std::to_string(t) + " in the virtual past of now=" +
                        std::to_string(e_->now()),
                    e_->now());
        return;  // only reached under ViolationCapture
      }
      util::fatal("sim", "cross-LP post targets the virtual past (t=" +
                             std::to_string(t) + ", now=" +
                             std::to_string(e_->now()) + ")");
    }
    LinkMsg m;
    m.t = t;
    m.fn = fn;
    m.ctx = ctx;
    m.payload = payload;
    m.src = 0;
    m.uid = e_->next_lp0_uid();
    e_->spec_route(0, dst, m);
  }

 private:
  OptimisticEngine* const e_;
};

}  // namespace

// ---------------------------------------------------------------------------
// OptLp

OptLp::OptLp(LpId id, std::uint32_t nlps, EventQueueKind queue_kind,
             OptimisticEngine* engine)
    : id_(id), nlps_(nlps), engine_(engine),
      queue_(make_event_queue(queue_kind)), snap_pool_(arena_) {}

OptLp::~OptLp() {
  for (SpecRecord& rec : history_) snap_pool_.recycle(rec.before);
}

void OptLp::fail_or_fatal(audit::Invariant inv, const std::string& detail,
                          SimTime t) {
  if (audit::enabled()) {
    audit::fail(inv, detail, t);
    return;  // only reached under ViolationCapture
  }
  util::fatal("sim", std::string(audit::invariant_name(inv)) + ": " + detail);
}

VT_PURE void OptLp::schedule(SimTime t, LpHandler fn, void* ctx,
                             std::uint64_t payload) {
  // Coast-forward replay re-executes handlers whose effects already exist:
  // the events they scheduled are still in the queue (or were rolled back
  // and re-queued with their original seqs), so re-scheduling is suppressed.
  if (replaying_) return;
  if (audit::enabled() && t < now_) {
    audit::fail(audit::Invariant::kTimeMonotonic,
                "LP " + std::to_string(id_) + " event scheduled at t=" +
                    std::to_string(t) + " in the virtual past of now=" +
                    std::to_string(now_),
                now_);
  }
  if (obs::enabled()) {
    obs::instant(obs::Cat::kEngine, "schedule", now_, -1, {"t", t},
                 {"lp", static_cast<double>(id_)});
  }
  const std::uint64_t seq = next_seq_++;
  if (cur_ != nullptr) cur_->scheduled.push_back(seq);
  queue_->push(ScheduledEvent{t, seq, {}, fn, ctx, payload});
}

VT_PURE void OptLp::post(LpId dst, SimTime t, LpHandler fn, void* ctx,
                         std::uint64_t payload) {
  if (replaying_) return;  // sends already in flight; see schedule()
  if (dst == id_) {
    schedule(t, fn, ctx, payload);
    return;
  }
  if (t < now_) {
    fail_or_fatal(audit::Invariant::kTimeMonotonic,
                  "cross-LP post " + std::to_string(id_) + "->" +
                      std::to_string(dst) + " at t=" + std::to_string(t) +
                      " in the virtual past of now=" + std::to_string(now_),
                  now_);
    return;
  }
  const std::uint64_t uid = next_uid();
  if (cur_ != nullptr) cur_->sends.push_back(SentMsg{dst, t, uid});
  LinkMsg m;
  m.t = t;
  m.fn = fn;
  m.ctx = ctx;
  m.payload = payload;
  m.src = id_;
  m.uid = uid;
  engine_->spec_route(id_, dst, m);
}

VT_PURE void OptLp::ingest(SimTime t, LpHandler fn, void* ctx,
                           std::uint64_t payload) {
  if (audit::enabled() && t < now_) {
    audit::fail(audit::Invariant::kTimeMonotonic,
                "LP " + std::to_string(id_) + " ingested a message at t=" +
                    std::to_string(t) + " behind its clock now=" +
                    std::to_string(now_),
                now_);
  }
  queue_->push(ScheduledEvent{t, next_seq_++, {}, fn, ctx, payload});
}

bool OptLp::need_snapshot() const {
  if (history_.empty()) return true;  // first record must carry the floor
  const std::size_t look = std::min<std::size_t>(save_interval_,
                                                 history_.size());
  for (std::size_t i = 0; i < look; ++i) {
    if (history_[history_.size() - 1 - i].before.valid()) return false;
  }
  return true;
}

VT_PURE std::uint64_t OptLp::speculate(SimTime horizon,
                                       std::uint32_t max_events,
                                       bool traced) {
  CurrentLpScope scope(id_);
  std::optional<obs::ScopedSink> sink;
  if (traced) sink.emplace(spec_trace_);
  // An LP without a state saver cannot roll back, so it only runs events
  // the commit horizon has already made safe (inclusive — the horizon is
  // the global minimum, so the LP holding it always progresses).
  const SimTime cap = saver_ != nullptr ? horizon : committed_through_;
  std::uint64_t ran = 0;
  while (ran < max_events && !queue_->empty() && queue_->next_time() <= cap) {
    ScheduledEvent ev = queue_->pop();
    if (audit::enabled() && ev.t < now_) {
      audit::fail(audit::Invariant::kTimeMonotonic,
                  "LP " + std::to_string(id_) + " popped an event at t=" +
                      std::to_string(ev.t) + " behind its clock now=" +
                      std::to_string(now_),
                  now_);
    }
    if (ev.fn == nullptr) {
      util::fatal("sim",
                  "LP " + std::to_string(id_) +
                      " popped a coroutine event; coroutines are pinned to "
                      "the base LP");
    }
    SpecRecord rec;
    rec.ev = ev;
    rec.prev_now = now_;
    rec.trace_begin = spec_trace_.size();
    if (const auto it = pending_by_seq_.find(ev.seq);
        it != pending_by_seq_.end()) {
      rec.uid = it->second.uid;
      rec.src = it->second.src;
      pending_by_uid_.erase(it->second.uid);
      pending_by_seq_.erase(it);
    }
    if (saver_ != nullptr && need_snapshot()) {
      save_scratch_.clear();
      saver_->save(save_scratch_);
      rec.before = snap_pool_.make(save_scratch_);
      ++stats_.state_saves;
      stats_.state_bytes += save_scratch_.size();
    }
    now_ = ev.t;
    ++ran;
    ++stats_.speculated;
    if (obs::enabled()) {
      obs::instant(obs::Cat::kEngine, "pop", ev.t, -1,
                   {"eseq", static_cast<double>(ev.seq)},
                   {"lp", static_cast<double>(id_)});
    }
    history_.push_back(std::move(rec));
    cur_ = &history_.back();
    ev.fn(*this, ev.ctx, ev.payload);
    cur_ = nullptr;
  }
  return ran;
}

void OptLp::annihilate_pending(std::uint64_t uid) {
  const auto it = pending_by_uid_.find(uid);
  const std::uint64_t seq = it->second;
  queue_->cancel(seq);
  pending_by_uid_.erase(it);
  pending_by_seq_.erase(seq);
  ++stats_.annihilations;
}

void OptLp::rollback_from(std::size_t idx, const char* why) {
  if (saver_ == nullptr) {
    // Unreachable by construction — a saver-less LP never runs past the
    // commit horizon, and nothing below the horizon can be invalidated.
    util::fatal("sim", "LP " + std::to_string(id_) +
                           " rollback (" + why +
                           ") without a state saver: speculation cap broken");
  }
  ++stats_.rollbacks;
  stats_.rolled_back += history_.size() - idx;

  // Restore the newest snapshot at or before the rollback target, then
  // coast-forward replay the kept suffix — sends, schedules and traces
  // suppressed, since their effects are already in flight / in the queue.
  std::size_t floor = idx;
  while (!history_[floor].before.valid()) {
    // history_[0].before is always valid for a saver-ful LP (first record
    // snapshots, fossil collection keeps the floor), so this terminates.
    --floor;
  }
  saver_->restore(history_[floor].before.data, history_[floor].before.size);
  if (floor < idx) {
    replaying_ = true;
    obs::ScopedSink mute(replay_sink_);
    CurrentLpScope scope(id_);
    for (std::size_t i = floor; i < idx; ++i) {
      now_ = history_[i].ev.t;
      history_[i].ev.fn(*this, history_[i].ev.ctx, history_[i].ev.payload);
      ++stats_.replayed;
    }
    replaying_ = false;
  }

  // Retract the suffix's local schedules: re-execution will re-create
  // them, so keeping the originals would run each child twice.  A pending
  // child is cancelled in the queue; an executed child sits later in the
  // suffix (it ran after its parent) and is simply not re-queued below.
  std::vector<std::uint64_t> retracted;
  std::vector<std::uint64_t> suffix_seqs;
  for (std::size_t i = idx; i < history_.size(); ++i) {
    const SpecRecord& rec = history_[i];
    retracted.insert(retracted.end(), rec.scheduled.begin(),
                     rec.scheduled.end());
    suffix_seqs.push_back(rec.ev.seq);
  }
  std::sort(retracted.begin(), retracted.end());
  std::sort(suffix_seqs.begin(), suffix_seqs.end());
  for (const std::uint64_t seq : retracted) {
    if (!std::binary_search(suffix_seqs.begin(), suffix_seqs.end(), seq)) {
      queue_->cancel(seq);  // pending child, never executed
    }
  }

  // Undo the rolled-back suffix: chase every recorded send with an
  // anti-message, re-queue the events under their ORIGINAL seqs (so the
  // re-execution order — and any pending annihilation targeting them — is
  // unchanged), and drop their speculative trace.  Children created by the
  // suffix itself are retracted instead of re-queued (see above).
  for (std::size_t i = idx; i < history_.size(); ++i) {
    SpecRecord& rec = history_[i];
    for (const SentMsg& s : rec.sends) {
      LinkMsg anti;
      anti.t = s.t;
      anti.src = id_;
      anti.uid = s.uid;
      anti.anti = true;
      engine_->spec_route(id_, s.dst, anti);
      ++stats_.antis_sent;
    }
    if (!std::binary_search(retracted.begin(), retracted.end(),
                            rec.ev.seq)) {
      queue_->push(rec.ev);
      if (rec.uid != 0) {
        pending_by_seq_[rec.ev.seq] = PendingMsg{rec.uid, rec.src};
        pending_by_uid_[rec.uid] = rec.ev.seq;
      }
    }
    snap_pool_.recycle(rec.before);
  }
  spec_trace_.truncate(history_[idx].trace_begin);
  now_ = history_[idx].prev_now;
  history_.erase(history_.begin() + static_cast<std::ptrdiff_t>(idx),
                 history_.end());
}

VT_PURE void OptLp::deliver(const LinkMsg& m) {
  if (m.anti) {
    if (pending_by_uid_.count(m.uid) != 0) {
      annihilate_pending(m.uid);
      return;
    }
    // Not pending: the positive may already have executed speculatively.
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (history_[i].uid != m.uid) continue;
      if (history_[i].committed) {
        fail_or_fatal(audit::Invariant::kCommittedTime,
                      "anti-message uid=" + std::to_string(m.uid) +
                          " targets a committed event at t=" +
                          std::to_string(history_[i].ev.t) + " on LP " +
                          std::to_string(id_),
                      m.t);
        return;
      }
      rollback_from(i, "anti-message");
      annihilate_pending(m.uid);  // rollback re-queued + re-registered it
      return;
    }
    fail_or_fatal(audit::Invariant::kAntiPairing,
                  "anti-message uid=" + std::to_string(m.uid) + " from LP " +
                      std::to_string(m.src) +
                      " matches no positive on LP " + std::to_string(id_),
                  m.t);
    return;
  }

  if (m.t < committed_through_) {
    fail_or_fatal(audit::Invariant::kCommittedTime,
                  "message from LP " + std::to_string(m.src) + " at t=" +
                      std::to_string(m.t) +
                      " arrives below the commit horizon " +
                      std::to_string(committed_through_) + " on LP " +
                      std::to_string(id_),
                  m.t);
    return;
  }
  if (m.t < now_) {
    // Straggler: undo every speculated event strictly later than the
    // message (equal-time events stand — the same commutativity contract
    // the conservative boundary relies on).
    ++stats_.stragglers;
    std::size_t i = 0;
    while (i < history_.size() && history_[i].ev.t <= m.t) ++i;
    if (i < history_.size()) rollback_from(i, "straggler");
  }
  const std::uint64_t seq = next_seq_++;
  queue_->push(ScheduledEvent{m.t, seq, {}, m.fn, m.ctx, m.payload});
  pending_by_seq_[seq] = PendingMsg{m.uid, m.src};
  pending_by_uid_[m.uid] = seq;
}

std::size_t OptLp::speculative_events() const noexcept {
  std::size_t n = 0;
  for (const SpecRecord& rec : history_) {
    if (!rec.committed) ++n;
  }
  return n;
}

VT_PURE void OptLp::commit(SimTime gvt, obs::TraceSink* committed_sink) {
  if (gvt < committed_through_) {
    fail_or_fatal(audit::Invariant::kCommittedTime,
                  "commit horizon went backwards on LP " +
                      std::to_string(id_) + ": gvt=" + std::to_string(gvt) +
                      " below " + std::to_string(committed_through_),
                  gvt);
    return;
  }
  committed_through_ = gvt;

  // history_ is ordered by execution, and execution times are non-decreasing
  // (queue pops are time-ordered; rollbacks remove suffixes), so the
  // committed region is the prefix with ev.t <= gvt.
  std::size_t k = 0;
  while (k < history_.size() && history_[k].ev.t <= gvt) ++k;

  const std::size_t tend =
      k < history_.size() ? history_[k].trace_begin : spec_trace_.size();
  if (tend > 0) {
    if (audit::enabled()) {
      SimTime prev = -kNoEvent;
      for (std::size_t i = 0; i < tend; ++i) {
        const obs::TraceEvent& e = spec_trace_.events()[i];
        if (e.t < prev) {
          audit::fail(audit::Invariant::kLpMergedOrder,
                      "LP " + std::to_string(id_) +
                          " committed trace stream went backwards at t=" +
                          std::to_string(e.t),
                      e.t);
        }
        prev = e.t;
      }
    }
    if (committed_sink != nullptr) {
      spec_trace_.flush_prefix(tend, *committed_sink);
    } else {
      spec_trace_.flush_prefix(tend, replay_sink_);
    }
    for (SpecRecord& rec : history_) {
      rec.trace_begin = rec.trace_begin > tend ? rec.trace_begin - tend : 0;
    }
  }

  for (std::size_t i = 0; i < k; ++i) {
    SpecRecord& rec = history_[i];
    if (!rec.committed) {
      rec.committed = true;
      ++committed_;
      rec.sends.clear();  // committed events never roll back
      rec.sends.shrink_to_fit();
      rec.scheduled.clear();
      rec.scheduled.shrink_to_fit();
    }
  }
  stats_.committed = committed_;

  // Fossil collection: everything before the coast-forward floor — the
  // newest snapshot at or before the horizon — can never be needed again.
  std::size_t floor = k;
  if (k < history_.size()) {
    while (floor > 0 && !history_[floor].before.valid()) --floor;
    if (!history_[floor].before.valid()) return;  // keep all (defensive)
  }
  for (std::size_t i = 0; i < floor; ++i) {
    snap_pool_.recycle(history_[i].before);
  }
  stats_.fossils += floor;
  history_.erase(history_.begin(),
                 history_.begin() + static_cast<std::ptrdiff_t>(floor));
}

// ---------------------------------------------------------------------------
// OptimisticEngine

OptimisticEngine::OptimisticEngine(std::uint32_t lps,
                                   EventQueueKind queue_kind)
    : Engine(queue_kind),
      nlps_(std::max<std::uint32_t>(1, std::min(lps, kMaxLps))) {
  long period = util::env_long("OPALSIM_GVT_PERIOD", 128);
  if (period < 1) period = 1;
  gvt_period_ = static_cast<std::uint32_t>(period);
  long interval = util::env_long("OPALSIM_CKPT_INTERVAL_EVENTS", 8);
  if (interval < 1) interval = 1;
  save_interval_ = static_cast<std::uint32_t>(interval);

  lps_.reserve(nlps_ > 0 ? nlps_ - 1 : 0);
  for (LpId k = 1; k < nlps_; ++k) {
    lps_.push_back(std::make_unique<OptLp>(k, nlps_, queue_kind, this));
    lps_.back()->set_save_interval(save_interval_);
  }
  if (nlps_ > 1) {
    links_.resize(static_cast<std::size_t>(nlps_) * nlps_);
    for (LpId src = 0; src < nlps_; ++src) {
      for (LpId dst = 0; dst < nlps_; ++dst) {
        if (src == dst) continue;
        links_[static_cast<std::size_t>(src) * nlps_ + dst] =
            std::make_unique<InterLpLink>();
      }
    }
  }
}

OptimisticEngine::~OptimisticEngine() = default;

OptLp& OptimisticEngine::lp_ref(LpId k) {
  if (k == 0 || k >= nlps_) {
    util::fatal("sim", "lp_ref: LP " + std::to_string(k) +
                           " out of range [1, " + std::to_string(nlps_) + ")");
  }
  return *lps_[k - 1];
}

void OptimisticEngine::set_state_saver(LpId lp, StateSaver* saver) {
  lp_ref(lp).set_state_saver(saver);
}

void OptimisticEngine::set_gvt_period(std::uint32_t events) noexcept {
  gvt_period_ = events < 1 ? 1 : events;
}

void OptimisticEngine::set_save_interval(std::uint32_t events) noexcept {
  save_interval_ = events < 1 ? 1 : events;
  for (auto& lp : lps_) lp->set_save_interval(save_interval_);
}

std::uint64_t OptimisticEngine::link_messages() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) {
    if (l) n += l->pushed();
  }
  return n;
}

OptimisticStats OptimisticEngine::stats() const {
  OptimisticStats s;
  s.rounds = rounds_;
  s.gvt_rounds = gvt_rounds_;
  s.gvt = gvt_;
  s.annihilations = lp0_annihilations_;
  for (const auto& lp : lps_) {
    const OptLpStats& l = lp->stats();
    s.stragglers += l.stragglers;
    s.rollbacks += l.rollbacks;
    s.rolled_back += l.rolled_back;
    s.antis_sent += l.antis_sent;
    s.annihilations += l.annihilations;
    s.replayed += l.replayed;
    s.speculated += l.speculated;
    s.committed += l.committed;
    s.state_saves += l.state_saves;
    s.state_bytes += l.state_bytes;
    s.fossils += l.fossils;
  }
  return s;
}

void OptimisticEngine::spec_route(LpId src, LpId dst, LinkMsg m) {
  if (src >= nlps_ || dst >= nlps_ || src == dst) {
    util::fatal("sim", "spec_route: bad LP pair " + std::to_string(src) +
                           "->" + std::to_string(dst));
  }
  links_[static_cast<std::size_t>(src) * nlps_ + dst]->push(m);
  remote_posted_.store(true, std::memory_order_relaxed);
}

VT_PURE void OptimisticEngine::post_handler(LpId lp, SimTime t, LpHandler fn,
                                            void* ctx,
                                            std::uint64_t payload) {
  if (lp == 0) {
    schedule_handler(t, fn, ctx, payload);
    return;
  }
  if (lp >= nlps_) {
    util::fatal("sim", "post_handler: LP " + std::to_string(lp) +
                           " out of range [0, " + std::to_string(nlps_) + ")");
  }
  lps_[lp - 1]->ingest(t, fn, ctx, payload);
}

std::uint64_t OptimisticEngine::total_events_processed() const noexcept {
  // Committed counts only: an optimistic run that has fully committed (every
  // run() returns that way) reports exactly the serial event count —
  // speculative re-executions are bookkept in stats().speculated.
  std::uint64_t n = events_processed();
  for (const auto& lp : lps_) n += lp->committed_events();
  return n;
}

std::vector<LpClock> OptimisticEngine::lp_clock_snaps() const {
  std::vector<LpClock> snaps;
  for (const auto& lp : lps_) {
    // Activity-gated, like the conservative engine: idle LPs contribute
    // nothing, so pure-coroutine programs snapshot byte-identically.
    if (lp->committed_events() == 0 && lp->next_local_seq() == 0 &&
        lp->now() == 0.0) {
      continue;
    }
    snaps.push_back(LpClock{lp->lp(), lp->now(), lp->next_local_seq(),
                            lp->committed_events()});
  }
  return snaps;
}

void OptimisticEngine::restore_lp_clocks(const std::vector<LpClock>& clocks) {
  for (const LpClock& c : clocks) {
    if (c.lp == 0 || c.lp >= nlps_) {
      util::fatal("sim", "restore_lp_clocks: snapshot LP " +
                             std::to_string(c.lp) + " not in this engine (" +
                             std::to_string(nlps_) + " LPs)");
    }
    OptLp& lp = *lps_[c.lp - 1];
    lp.restore_clock(c.now);
    lp.restore_counters(c.next_seq, c.processed);
  }
}

bool OptimisticEngine::fully_committed() const noexcept {
  if (!staged_lp0_.empty()) return false;
  for (const auto& lp : lps_) {
    if (lp->speculative_events() != 0) return false;
  }
  return true;
}

void OptimisticEngine::ensure_pool() {
  if (pool_) return;
  const unsigned hw = util::ThreadPool::default_threads();
  const unsigned width = std::max(
      1u, std::min(nlps_ - 1, hw > 1 ? hw - 1 : 1u));
  pool_ = std::make_unique<util::ThreadPool>(width);
}

VT_PURE std::uint64_t OptimisticEngine::drain_lp0(SimTime cap,
                                                  bool stop_on_remote_post) {
  BaseOptRuntime rt(this);
  std::uint64_t ran = 0;
  while (!queue_->empty() && queue_->next_time() <= cap) {
    ScheduledEvent ev = queue_->pop();
    if (audit::enabled()) audit_pop(ev.t);
    now_ = ev.t;
    ++processed_;
    ++ran;
    if (obs::enabled()) {
      obs::instant(obs::Cat::kEngine, "pop", ev.t, -1,
                   {"eseq", static_cast<double>(ev.seq)});
    }
    if (ev.fn != nullptr) {
      ev.fn(rt, ev.ctx, ev.payload);
    } else {
      ev.handle.resume();
    }
    if (stop_on_remote_post &&
        remote_posted_.load(std::memory_order_relaxed)) {
      break;
    }
  }
  return ran;
}

std::size_t OptimisticEngine::drain_and_deliver() {
  if (nlps_ <= 1) return 0;
  std::size_t total = 0;
  for (LpId dst = 0; dst < nlps_; ++dst) {
    drain_scratch_.clear();
    for (LpId src = 0; src < nlps_; ++src) {
      if (src == dst) continue;
      links_[static_cast<std::size_t>(src) * nlps_ + dst]->drain(
          drain_scratch_);
    }
    if (drain_scratch_.empty()) continue;
    // Deterministic delivery order.  Per-link FIFO plus this stable key
    // guarantee a positive precedes its own anti (same t and src, lower
    // src_seq) within a batch and across batches.
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const LinkMsg& a, const LinkMsg& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.src != b.src) return a.src < b.src;
                return a.src_seq < b.src_seq;
              });
    if (audit::enabled()) {
      for (std::size_t i = 1; i < drain_scratch_.size(); ++i) {
        const LinkMsg& a = drain_scratch_[i - 1];
        const LinkMsg& b = drain_scratch_[i];
        if (a.t == b.t && a.src == b.src && a.src_seq == b.src_seq) {
          audit::fail(audit::Invariant::kLpMergedOrder,
                      "duplicate (t, lp, seq) key in link merge: t=" +
                          std::to_string(b.t) + " src=" +
                          std::to_string(b.src),
                      b.t);
        }
      }
    }
    for (const LinkMsg& m : drain_scratch_) {
      if (dst != 0) {
        lps_[dst - 1]->deliver(m);
        continue;
      }
      // LP 0 cannot roll back, so its inbound messages are STAGED until
      // the commit horizon passes them.  An anti can only target a staged
      // positive: rolled-back sends have t > GVT (post enforces t >= the
      // sender's clock, and committed events never roll back), and only
      // t <= GVT messages are ever released into the base queue.
      if (m.anti) {
        bool matched = false;
        for (std::size_t i = 0; i < staged_lp0_.size(); ++i) {
          if (staged_lp0_[i].uid == m.uid) {
            staged_lp0_.erase(staged_lp0_.begin() +
                              static_cast<std::ptrdiff_t>(i));
            ++lp0_annihilations_;
            matched = true;
            break;
          }
        }
        if (!matched) {
          if (audit::enabled()) {
            audit::fail(audit::Invariant::kAntiPairing,
                        "anti-message uid=" + std::to_string(m.uid) +
                            " from LP " + std::to_string(m.src) +
                            " matches no staged positive on LP 0",
                        m.t);
          } else {
            util::fatal("sim", "anti-pairing: unmatched anti-message for "
                               "LP 0 (uid=" + std::to_string(m.uid) + ")");
          }
        }
      } else {
        staged_lp0_.push_back(m);
      }
    }
    total += drain_scratch_.size();
  }
  return total;
}

void OptimisticEngine::release_staged(SimTime gvt) {
  if (staged_lp0_.empty()) return;
  std::vector<LinkMsg> ready;
  std::vector<LinkMsg> rest;
  for (const LinkMsg& m : staged_lp0_) {
    (m.t <= gvt ? ready : rest).push_back(m);
  }
  if (ready.empty()) return;
  std::sort(ready.begin(), ready.end(),
            [](const LinkMsg& a, const LinkMsg& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.src != b.src) return a.src < b.src;
              return a.src_seq < b.src_seq;
            });
  for (const LinkMsg& m : ready) {
    schedule_handler(m.t, m.fn, m.ctx, m.payload);
  }
  staged_lp0_ = std::move(rest);
}

SimTime OptimisticEngine::unprocessed_min() {
  SimTime t_min = kNoEvent;
  if (!queue_->empty()) t_min = queue_->next_time();
  for (const LinkMsg& m : staged_lp0_) {
    if (m.t < t_min) t_min = m.t;
  }
  for (auto& lp : lps_) {
    if (!lp->has_events()) continue;
    const SimTime t = lp->next_time();
    if (t < t_min) t_min = t;
  }
  return t_min;
}

void OptimisticEngine::run_rounds(bool bounded, SimTime t_end) {
  obs::TraceSink* caller_sink = obs::current();
  const bool traced = caller_sink != nullptr;
  const std::uint64_t owner_tag = audit_run_tag_;

  const auto commit_all = [&](SimTime horizon) {
    // Never move the horizon backwards (re-entrant run_until with an
    // earlier t_end is legal and a no-op for commitment).
    if (horizon < gvt_) horizon = gvt_;
    for (auto& lp : lps_) lp->commit(horizon, caller_sink);
    gvt_ = horizon;
    release_staged(horizon);
  };

  for (;;) {
    // Stabilize: drain links until no message moves.  Deliveries can
    // trigger rollbacks which emit anti-messages back onto the links, so
    // iterate to quiescence — only then is "minimum unprocessed" the GVT.
    while (drain_and_deliver() > 0) {
    }

    SimTime t_min = kNoEvent;
    std::uint32_t active = 0;
    const bool lp0_active = !queue_->empty() || !staged_lp0_.empty();
    if (lp0_active) {
      t_min = unprocessed_min();  // includes the staged buffer
      ++active;
    }
    bool any_spec = false;
    for (LpId k = 1; k < nlps_; ++k) {
      OptLp& lp = *lps_[k - 1];
      if (lp.speculative_events() != 0) any_spec = true;
      if (!lp.has_events()) continue;
      ++active;
      const SimTime t = lp.next_time();
      if (t < t_min) t_min = t;
    }
    if (active == 0) {
      // Quiescent: all queues and links empty.  Commit every remaining
      // speculative event — nothing is left that could invalidate it.
      SimTime horizon = bounded ? t_end : now_;
      if (!bounded) {
        for (auto& lp : lps_) {
          if (lp->now() > horizon) horizon = lp->now();
        }
      }
      commit_all(horizon);
      break;
    }
    if (bounded && t_min > t_end) {
      commit_all(t_end);
      break;
    }
    ++rounds_;

    if (active == 1 && lp0_active && staged_lp0_.empty() && !any_spec) {
      // Solo fast path: LP 0 owns every pending event and nothing is
      // speculative anywhere, so the serial run loop applies unchanged —
      // byte-identity for pure-coroutine programs.  Falls back to full
      // rounds on the first cross-LP post.
      remote_posted_.store(false, std::memory_order_relaxed);
      drain_lp0(bounded ? t_end : kNoEvent, /*stop_on_remote_post=*/true);
      continue;
    }

    // GVT: with the links quiescent, the minimum unprocessed time is the
    // commit horizon — no unprocessed event can cause a send into its own
    // past (posts satisfy t >= sender clock).
    const SimTime gvt = t_min;
    ++gvt_rounds_;
    commit_all(gvt);

    // Speculation: LPs >= 1 run ahead on pool workers (budgeted per round
    // so GVT keeps pace); LP 0 advances inclusively to GVT inline — its
    // events commit the moment they run.
    const SimTime horizon = bounded ? t_end : kNoEvent;
    bool any_jobs = false;
    for (LpId k = 1; k < nlps_; ++k) {
      if (lps_[k - 1]->has_events()) {
        any_jobs = true;
        break;
      }
    }
    if (any_jobs) {
      ensure_pool();
      RoundLatch latch;
      int jobs = 0;
      for (LpId k = 1; k < nlps_; ++k) {
        if (lps_[k - 1]->has_events()) ++jobs;
      }
      latch.arm(jobs);
      const std::uint32_t budget = gvt_period_;
      for (LpId k = 1; k < nlps_; ++k) {
        OptLp* lp = lps_[k - 1].get();
        if (!lp->has_events()) continue;
        pool_->submit([lp, horizon, budget, traced, owner_tag, &latch] {
          std::exception_ptr err;
          try {
            util::RunTagAdopt adopt(owner_tag);
            lp->speculate(horizon, budget, traced);
          } catch (...) {
            err = std::current_exception();
          }
          latch.count_down(err);
        });
      }
      if (!queue_->empty()) {
        drain_lp0(bounded ? std::min(gvt, t_end) : gvt,
                  /*stop_on_remote_post=*/false);
      }
      latch.wait_and_rethrow();
    } else if (!queue_->empty()) {
      drain_lp0(bounded ? std::min(gvt, t_end) : gvt,
                /*stop_on_remote_post=*/false);
    }
  }
}

VT_PURE void OptimisticEngine::run() {
  run_rounds(/*bounded=*/false, 0.0);
  rethrow_pending_failure();
}

VT_PURE void OptimisticEngine::run_until(SimTime t_end) {
  run_rounds(/*bounded=*/true, t_end);
  if (now_ < t_end) now_ = t_end;
  if (gvt_ < t_end) gvt_ = t_end;
  for (auto& lp : lps_) lp->advance_clock_to(t_end);
  rethrow_pending_failure();
}

}  // namespace opalsim::sim
