// Simulated-time representation.  OpalSim models wall-clock seconds as a
// double; the engine guarantees deterministic ordering of simultaneous events
// via a monotonically increasing sequence number, so double precision is
// sufficient for the second-to-microsecond scales of this study.
#pragma once

#include "util/domains.hpp"

namespace opalsim::sim {

/// Virtual time in seconds.
using SimTime = double;

VT_PURE constexpr SimTime seconds(double s) noexcept { return s; }
VT_PURE constexpr SimTime milliseconds(double ms) noexcept { return ms * 1e-3; }
VT_PURE constexpr SimTime microseconds(double us) noexcept { return us * 1e-6; }
VT_PURE constexpr SimTime nanoseconds(double ns) noexcept { return ns * 1e-9; }

constexpr double to_milliseconds(SimTime t) noexcept { return t * 1e3; }
constexpr double to_microseconds(SimTime t) noexcept { return t * 1e6; }

}  // namespace opalsim::sim
