// Deterministic fault injection.
//
// A FaultModel turns a FaultSpec (rates, degradation windows, scheduled node
// deaths) into concrete, reproducible per-event decisions.  All randomness
// flows through dedicated SplitMix64/Xoshiro256 streams seeded from the spec
// seed — never wall-clock — so a fixed fault seed replays the exact same
// drops, duplications, corruptions and stalls in the exact same virtual-time
// order (the DES engine is single-threaded, hence decision order is itself
// deterministic).
//
// Decision streams are separated by concern (message faults, corruption
// positions, daemon stalls) so adding a consumer to one stream cannot shift
// the decisions of another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace opalsim::sim {

/// What the fault layer does to one message in flight.
enum class MessageFault { None, Drop, Duplicate, Corrupt };

/// A virtual-time window during which a link runs degraded.  Flapping links
/// are expressed as a train of such windows (see FaultSpec::add_flap).
struct LinkDegradation {
  double t_start = 0.0;
  double t_end = 0.0;
  double bandwidth_factor = 1.0;  ///< multiplies the observed rate (<1 = slower)
  double latency_factor = 1.0;    ///< multiplies the latency (>1 = slower)
};

/// A node scheduled to die (crash or hang — indistinguishable on the wire:
/// the node stops sending and stops consuming) at a virtual time.
struct NodeFault {
  int node = -1;
  double t_fail = 0.0;
};

struct FaultSpec {
  std::uint64_t seed = 0;

  // Per-message fault rates, each in [0, 1].  Evaluated in the order
  // drop -> duplicate -> corrupt from one uniform draw, so the three are
  // mutually exclusive per message and rates simply partition [0, 1).
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double corrupt_rate = 0.0;

  // Daemon pathology (J90 PVM daemon path, paper §3.1): with probability
  // `daemon_stall_rate` a message finds the daemon stalled and pays an extra
  // `daemon_stall_s` of service time while holding it.
  double daemon_stall_rate = 0.0;
  double daemon_stall_s = 0.0;

  /// Link bandwidth/latency degradation windows.
  std::vector<LinkDegradation> degradations;

  /// Scheduled node deaths (virtual time).
  std::vector<NodeFault> node_faults;

  bool enabled() const noexcept {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
           daemon_stall_rate > 0.0 || !degradations.empty() ||
           !node_faults.empty();
  }

  /// Appends a flapping-link schedule: between t_start and t_end the link
  /// alternates `period_s`-long down-phases (degraded by the given factors)
  /// with `period_s`-long up-phases.
  void add_flap(double t_start, double t_end, double period_s,
                double bandwidth_factor, double latency_factor = 1.0);
};

class FaultModel {
 public:
  /// Disabled model: every query is the identity / "no fault".
  FaultModel() : FaultModel(FaultSpec{}) {}
  explicit FaultModel(FaultSpec spec);

  const FaultSpec& spec() const noexcept { return spec_; }
  bool enabled() const noexcept { return enabled_; }

  // -- message-level faults (consumed by the PVM delivery path) ------------

  /// Deterministic fate of the next message from src to dst.  Advances the
  /// message stream only when message faults are configured.
  MessageFault next_message_fault(int src, int dst);

  /// Byte position to corrupt in a payload of `payload_bytes` bytes
  /// (consumes the corruption stream).
  std::size_t next_corrupt_position(std::size_t payload_bytes);

  // -- link-level faults (consumed by the network models) ------------------

  /// Extra daemon service time for a message passing the daemon at `now`.
  double next_daemon_stall(double now);

  /// Multiplier on transfer bandwidth at virtual time `now` (<= 1 degrades).
  double bandwidth_factor(double now) const noexcept;
  /// Multiplier on transfer latency at virtual time `now` (>= 1 degrades).
  double latency_factor(double now) const noexcept;

  // -- node faults ---------------------------------------------------------

  /// True when `node` has failed at or before virtual time `now`.
  bool node_dead(int node, double now) const noexcept;

  /// Declares `node` dead as of virtual time `t` (dynamic kill switch used
  /// by step-indexed kill schedules).
  void kill_node(int node, double t);

  // -- counters (what actually happened this run) --------------------------

  struct Counters {
    std::uint64_t messages_seen = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t daemon_stalls = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

  // -- checkpoint/restart (src/ckpt) ---------------------------------------
  // The model's future decisions are fully determined by (spec node_faults +
  // dynamic kills, enabled flag, the three stream states, counters); the
  // static rate/degradation config is rebuilt from the run config.

  util::Xoshiro256& message_rng() noexcept { return message_rng_; }
  util::Xoshiro256& corrupt_rng() noexcept { return corrupt_rng_; }
  util::Xoshiro256& stall_rng() noexcept { return stall_rng_; }
  const util::Xoshiro256& message_rng() const noexcept { return message_rng_; }
  const util::Xoshiro256& corrupt_rng() const noexcept { return corrupt_rng_; }
  const util::Xoshiro256& stall_rng() const noexcept { return stall_rng_; }

  /// Restores the dynamic state captured at a quiescent boundary (resume
  /// only).  `node_faults` replaces the spec's list wholesale — it includes
  /// both configured and dynamically killed nodes.
  void restore(std::vector<NodeFault> node_faults, bool enabled,
               const Counters& counters) {
    spec_.node_faults = std::move(node_faults);
    enabled_ = enabled;
    counters_ = counters;
  }

 private:
  FaultSpec spec_;
  bool enabled_ = false;
  bool message_faults_ = false;
  util::Xoshiro256 message_rng_;
  util::Xoshiro256 corrupt_rng_;
  util::Xoshiro256 stall_rng_;
  Counters counters_;
};

}  // namespace opalsim::sim
