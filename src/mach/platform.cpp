#include "mach/platform.hpp"

#include <stdexcept>

namespace opalsim::mach {

Machine::Machine(sim::Engine& engine, const PlatformSpec& spec, int nodes)
    : engine_(&engine), spec_(spec), fault_(spec.fault) {
  if (nodes <= 0) throw std::invalid_argument("Machine: nodes must be > 0");
  cpus_.reserve(nodes);
  for (int i = 0; i < nodes; ++i)
    cpus_.push_back(std::make_unique<Cpu>(engine, spec.cpu));
  network_ = make_network(engine, spec.net, nodes);
  network_->set_fault_model(&fault_);
  // Conservative lookahead for the parallel engine: no cross-node effect
  // propagates faster than the interconnect's minimum latency.  The serial
  // engine ignores the hint.
  engine.set_lookahead_hint(spec.net.min_latency_s());
}

}  // namespace opalsim::mach
