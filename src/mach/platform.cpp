#include "mach/platform.hpp"

#include <stdexcept>

namespace opalsim::mach {

Machine::Machine(sim::Engine& engine, const PlatformSpec& spec, int nodes)
    : engine_(&engine), spec_(spec), fault_(spec.fault) {
  if (nodes <= 0) throw std::invalid_argument("Machine: nodes must be > 0");
  cpus_.reserve(nodes);
  for (int i = 0; i < nodes; ++i)
    cpus_.push_back(std::make_unique<Cpu>(engine, spec.cpu));
  network_ = make_network(engine, spec.net, nodes);
  network_->set_fault_model(&fault_);
}

}  // namespace opalsim::mach
