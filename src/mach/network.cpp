#include "mach/network.hpp"

#include <cassert>
#include <algorithm>
#include <stdexcept>

namespace opalsim::mach {

SwitchedNetwork::SwitchedNetwork(sim::Engine& engine, NetSpec spec, int nodes)
    : NetworkModel(std::move(spec)), engine_(&engine) {
  assert(nodes > 0);
  send_links_.reserve(nodes);
  recv_links_.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    send_links_.push_back(std::make_unique<sim::Resource>(engine, 1));
    recv_links_.push_back(std::make_unique<sim::Resource>(engine, 1));
  }
}

sim::Task<void> SwitchedNetwork::transfer(int src, int dst,
                                          std::size_t bytes) {
  assert(src >= 0 && src < static_cast<int>(send_links_.size()));
  assert(dst >= 0 && dst < static_cast<int>(recv_links_.size()));
  account(bytes);
  auto send_lock = co_await send_links_[src]->scoped_acquire();
  auto recv_lock = co_await recv_links_[dst]->scoped_acquire();
  co_await engine_->delay(effective_time(bytes, engine_->now()));
}

SharedBusNetwork::SharedBusNetwork(sim::Engine& engine, NetSpec spec)
    : NetworkModel(std::move(spec)), engine_(&engine), bus_(engine, 1) {}

sim::Task<void> SharedBusNetwork::transfer(int /*src*/, int /*dst*/,
                                           std::size_t bytes) {
  account(bytes);
  auto lock = co_await bus_.scoped_acquire();
  co_await engine_->delay(effective_time(bytes, engine_->now()));
}

DaemonNetwork::DaemonNetwork(sim::Engine& engine, NetSpec spec)
    : NetworkModel(std::move(spec)), engine_(&engine), daemon_(engine, 1) {}

sim::Task<void> DaemonNetwork::transfer(int /*src*/, int /*dst*/,
                                        std::size_t bytes) {
  account(bytes);
  auto lock = co_await daemon_.scoped_acquire();
  double t = effective_time(bytes, engine_->now());
  // The daemon can stall mid-service (paper §3.1's pathological path); the
  // stall is paid while holding the daemon, so it backs up all traffic.
  if (auto* fault = fault_model(); fault != nullptr && fault->enabled()) {
    t += fault->next_daemon_stall(engine_->now());
  }
  co_await engine_->delay(t);
}

HierarchicalNetwork::HierarchicalNetwork(sim::Engine& engine, NetSpec spec,
                                         int nodes)
    : NetworkModel(std::move(spec)), engine_(&engine) {
  assert(nodes > 0);
  if (this->spec().box_size <= 0)
    throw std::invalid_argument("HierarchicalNetwork: box_size must be > 0");
  const int boxes =
      (nodes + this->spec().box_size - 1) / this->spec().box_size;
  for (int b = 0; b < boxes; ++b) {
    buses_.push_back(std::make_unique<sim::Resource>(engine, 1));
    gateways_.push_back(std::make_unique<sim::Resource>(engine, 1));
  }
}

sim::Task<void> HierarchicalNetwork::transfer(int src, int dst,
                                              std::size_t bytes) {
  account(bytes);
  const int sb = box_of(src);
  const int db = box_of(dst);
  if (sb == db) {
    auto bus = co_await buses_[sb]->scoped_acquire();
    double t = intra_unloaded_time(bytes);
    if (auto* fault = fault_model(); fault != nullptr && fault->enabled()) {
      const double now = engine_->now();
      t = spec().intra_latency_s * fault->latency_factor(now) +
          static_cast<double>(bytes) /
              (spec().intra_bytes_per_second() * fault->bandwidth_factor(now));
    }
    co_await engine_->delay(t);
    co_return;
  }
  // Acquire both gateways in box order to avoid deadlock between opposing
  // inter-box transfers.
  const int first = std::min(sb, db);
  const int second = std::max(sb, db);
  auto g1 = co_await gateways_[first]->scoped_acquire();
  auto g2 = co_await gateways_[second]->scoped_acquire();
  co_await engine_->delay(effective_time(bytes, engine_->now()));
}

std::unique_ptr<NetworkModel> make_network(sim::Engine& engine, NetSpec spec,
                                           int nodes) {
  switch (spec.kind) {
    case NetSpec::Kind::Switched:
      return std::make_unique<SwitchedNetwork>(engine, std::move(spec), nodes);
    case NetSpec::Kind::SharedBus:
      return std::make_unique<SharedBusNetwork>(engine, std::move(spec));
    case NetSpec::Kind::Daemon:
      return std::make_unique<DaemonNetwork>(engine, std::move(spec));
    case NetSpec::Kind::Hierarchical:
      return std::make_unique<HierarchicalNetwork>(engine, std::move(spec),
                                                   nodes);
  }
  return nullptr;  // unreachable
}

}  // namespace opalsim::mach
