// CPU and memory-hierarchy models.
//
// A CpuSpec describes a node processor by its *adjusted computation rate*
// (Table 1, last column: canonical J90-counted MFlop divided by node time),
// its clock, its intrinsic-cost table (what its monitor counts, Table 1
// column 3) and its memory hierarchy (the §2.6 in-cache/in-core/out-of-core
// rate factors).  A Cpu is a CpuSpec bound to a simulation engine: awaiting
// Cpu::compute() advances virtual time by the work's duration and charges the
// node's HPM counter.
#pragma once

#include <string>

#include "hpm/op_counts.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace opalsim::mach {

/// Piecewise memory-hierarchy model: the computation rate is scaled by a
/// factor chosen from the working-set size (paper §2.6: 50 KB in cache
/// -> 1.09, 8 MB in core -> 1.00, 120 MB out of core -> 0.25).
struct MemoryHierarchy {
  std::size_t cache_bytes = 512 * 1024;          ///< largest in-cache set
  std::size_t core_bytes = 64 * 1024 * 1024;     ///< largest in-core set
  double in_cache_factor = 1.0;
  double in_core_factor = 1.0;
  double out_of_core_factor = 1.0;

  double factor(std::size_t working_set_bytes) const noexcept {
    if (working_set_bytes <= cache_bytes) return in_cache_factor;
    if (working_set_bytes <= core_bytes) return in_core_factor;
    return out_of_core_factor;
  }

  /// A flat hierarchy (vector machines: no cache sensitivity).
  static MemoryHierarchy flat() noexcept {
    return MemoryHierarchy{0, 0, 1.0, 1.0, 1.0};
  }
};

/// Static description of a node processor.
struct CpuSpec {
  std::string name;
  double clock_mhz = 0.0;
  /// Canonical (J90-counted) MFlop/s this processor sustains on the Opal
  /// kernel — Table 1 "Adjusted Computation Rate".
  double adjusted_mflops = 0.0;
  hpm::IntrinsicCostTable intrinsics;
  MemoryHierarchy memory;
  /// Vector machines can disable vectorization (paper §2.6 notes the J90
  /// study would toggle it); scalar fallback runs at this fraction of the
  /// vector rate.
  double scalar_fraction = 1.0;

  double clock_hz() const noexcept { return clock_mhz * 1e6; }

  /// Seconds to execute `ops` with the given working set.
  double seconds_for(const hpm::OpCounts& ops, std::size_t working_set_bytes,
                     bool vectorized = true) const noexcept {
    const double canonical =
        hpm::canonical_cost_table().counted_flops(ops);
    double rate = adjusted_mflops * 1e6 * memory.factor(working_set_bytes);
    if (!vectorized) rate *= scalar_fraction;
    return canonical / rate;
  }
};

/// A CpuSpec bound to an Engine and an HPM counter — one per node.
class Cpu {
 public:
  Cpu(sim::Engine& engine, CpuSpec spec)
      : engine_(&engine), spec_(std::move(spec)) {}

  const CpuSpec& spec() const noexcept { return spec_; }
  hpm::HpmCounter& counter() noexcept { return counter_; }
  const hpm::HpmCounter& counter() const noexcept { return counter_; }

  void set_vectorized(bool v) noexcept { vectorized_ = v; }
  bool vectorized() const noexcept { return vectorized_; }

  /// Awaitable: executes `ops` on this CPU, advancing virtual time and
  /// charging the HPM counter.
  sim::Task<void> compute(hpm::OpCounts ops, std::size_t working_set_bytes);

  /// Non-coroutine variant for callers that account time themselves:
  /// returns the duration and charges the counter.
  double charge(const hpm::OpCounts& ops, std::size_t working_set_bytes);

 private:
  sim::Engine* engine_;
  CpuSpec spec_;
  hpm::HpmCounter counter_;
  bool vectorized_ = true;
};

}  // namespace opalsim::mach
