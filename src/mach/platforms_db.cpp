#include "mach/platforms_db.hpp"

#include "sim/time.hpp"

namespace opalsim::mach {

namespace {

// Pentium-class intrinsics (PGI compiler): hardware div/sqrt count as one
// flop each; exp/log expand to a short polynomial.  This is the paper's
// "best compiler sets a lower bound" counting.
hpm::IntrinsicCostTable pentium_intrinsics() {
  hpm::IntrinsicCostTable t;
  t.div = 1.0;
  t.sqrt = 1.0;
  t.exp = 6.0;
  return t;
}

// Pentium 200 memory hierarchy per the §2.6 trials: 50 KB working set in
// cache runs 1.09x the 8 MB in-core rate; the 120 MB out-of-core set
// collapses to 0.25x.
MemoryHierarchy pentium_memory() {
  MemoryHierarchy m;
  m.cache_bytes = 256 * 1024;        // P6 on-package L2
  m.core_bytes = 64 * 1024 * 1024;   // physical DRAM before swapping
  m.in_cache_factor = 1.09;
  m.in_core_factor = 1.00;
  m.out_of_core_factor = 0.25;
  return m;
}

}  // namespace

PlatformSpec cray_j90() {
  PlatformSpec p;
  p.name = "Cray J90 Classic";
  p.cpu.name = "J90 vector CPU";
  p.cpu.clock_mhz = 100.0;
  p.cpu.adjusted_mflops = 80.0;
  // Cray counting: iterative reciprocal (div=3), 8-flop vector sqrt, long
  // exp expansion, plus 10% vectorizing-transformation overhead.  This IS
  // the canonical work measure (hpm::canonical_cost_table).
  p.cpu.intrinsics = hpm::IntrinsicCostTable{1.0, 1.0, 3.0, 8.0,
                                             10.0, 0.0, 1.10};
  p.cpu.memory = MemoryHierarchy::flat();  // vector loads hide the hierarchy
  p.cpu.scalar_fraction = 0.10;            // vectorization off: ~10x slower
  p.net.kind = NetSpec::Kind::Daemon;
  p.net.name = "PVM/Sciddle over crossbar";
  p.net.hw_peak_MBps = 2000.0;
  p.net.observed_MBps = 3.0;
  p.net.latency_s = sim::milliseconds(10);
  p.sync_time_s = sim::milliseconds(5);
  return p;
}

PlatformSpec cray_t3e900() {
  PlatformSpec p;
  p.name = "Cray T3E-900";
  p.cpu.name = "Alpha 21164 (450 MHz)";
  p.cpu.clock_mhz = 450.0;
  p.cpu.adjusted_mflops = 52.0;
  // The T3E compiler software-pipelines and expands div/sqrt into long
  // Newton sequences: it counts ~1.63x the J90 flops for the same kernel.
  p.cpu.intrinsics = hpm::IntrinsicCostTable{1.0, 1.0, 10.0, 20.0,
                                             12.0, 0.0, 1.10};
  p.cpu.memory = MemoryHierarchy{96 * 1024, 256 * 1024 * 1024,
                                 1.05, 1.00, 0.30};
  p.net.kind = NetSpec::Kind::Switched;
  p.net.name = "T3E torus (MPI)";
  p.net.hw_peak_MBps = 350.0;
  p.net.observed_MBps = 100.0;
  p.net.latency_s = sim::microseconds(12);
  p.sync_time_s = sim::microseconds(20);
  return p;
}

PlatformSpec slow_cops() {
  PlatformSpec p;
  p.name = "Slow CoPs";
  p.cpu.name = "Pentium Pro (200 MHz)";
  p.cpu.clock_mhz = 200.0;
  p.cpu.adjusted_mflops = 50.0;
  p.cpu.intrinsics = pentium_intrinsics();
  p.cpu.memory = pentium_memory();
  p.net.kind = NetSpec::Kind::SharedBus;
  p.net.name = "shared 100BaseT Ethernet";
  p.net.hw_peak_MBps = 10.0;
  p.net.observed_MBps = 3.0;
  p.net.latency_s = sim::milliseconds(10);
  p.sync_time_s = sim::milliseconds(5);
  return p;
}

PlatformSpec smp_cops() {
  PlatformSpec p;
  p.name = "SMP CoPs";
  p.cpu.name = "2x Pentium Pro (200 MHz)";
  p.cpu.clock_mhz = 200.0;
  p.cpu.adjusted_mflops = 100.0;  // twin processors per node
  p.cpu.intrinsics = pentium_intrinsics();
  p.cpu.memory = pentium_memory();
  p.smp_width = 2;
  p.net.kind = NetSpec::Kind::Switched;
  p.net.name = "SCI shared-memory interconnect";
  p.net.hw_peak_MBps = 50.0;
  p.net.observed_MBps = 15.0;
  p.net.latency_s = sim::microseconds(25);
  p.sync_time_s = sim::microseconds(40);
  return p;
}

PlatformSpec fast_cops() {
  PlatformSpec p;
  p.name = "Fast CoPs";
  p.cpu.name = "Pentium Pro (400 MHz)";
  p.cpu.clock_mhz = 400.0;
  p.cpu.adjusted_mflops = 102.0;
  p.cpu.intrinsics = pentium_intrinsics();
  p.cpu.memory = pentium_memory();
  p.net.kind = NetSpec::Kind::Switched;
  p.net.name = "switched Myrinet";
  p.net.hw_peak_MBps = 125.0;
  p.net.observed_MBps = 30.0;
  p.net.latency_s = sim::microseconds(15);
  p.sync_time_s = sim::microseconds(25);
  return p;
}

PlatformSpec pentium200() {
  PlatformSpec p = slow_cops();
  p.name = "Pentium 200 (standalone)";
  return p;
}

PlatformSpec hippi_j90_cluster() {
  PlatformSpec p = cray_j90();
  p.name = "HIPPI J90 cluster";
  p.net.kind = NetSpec::Kind::Switched;
  p.net.name = "HIPPI (MPI, zero-copy)";
  p.net.hw_peak_MBps = 100.0;
  p.net.observed_MBps = 60.0;
  p.net.latency_s = sim::microseconds(200);
  p.sync_time_s = sim::microseconds(300);
  return p;
}

PlatformSpec hippi_j90_cluster_hierarchical(int cpus_per_box) {
  PlatformSpec p = hippi_j90_cluster();
  p.name = "HIPPI J90 cluster (hierarchical)";
  p.net.kind = NetSpec::Kind::Hierarchical;
  p.net.name = "crossbar in-box / HIPPI between boxes";
  p.net.box_size = cpus_per_box;
  p.net.intra_observed_MBps = 200.0;  // shared-memory transport in the box
  p.net.intra_latency_s = sim::microseconds(5);
  p.smp_width = cpus_per_box;
  return p;
}

std::vector<PlatformSpec> prediction_platforms() {
  return {cray_t3e900(), cray_j90(), slow_cops(), smp_cops(), fast_cops()};
}

}  // namespace opalsim::mach
