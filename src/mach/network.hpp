// Network models.  A transfer of B bytes costs b1 + B/a1 (the model's
// communication terms), but *where* that cost is paid differs per
// architecture and is what makes the prediction figures bend:
//
//  - SwitchedNetwork   (T3E torus, Myrinet, SCI): full-duplex per-node links;
//                      disjoint pairs transfer concurrently.
//  - SharedBusNetwork  (shared Ethernet): one message on the medium at a
//                      time — the whole cost serializes on a single bus.
//  - DaemonNetwork     (J90 PVM/Sciddle path): every message is shepherded by
//                      a single PVM daemon; structurally a serializing hub
//                      with the disastrous observed 3 MB/s despite a GB/s
//                      crossbar underneath (paper §3.1).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace opalsim::mach {

/// Static description of an interconnect.
struct NetSpec {
  enum class Kind { Switched, SharedBus, Daemon, Hierarchical };
  Kind kind = Kind::Switched;
  std::string name;
  double hw_peak_MBps = 0.0;    ///< Table 2 "hw peak"
  double observed_MBps = 0.0;   ///< Table 2 "observed" — the model's a1
  double latency_s = 0.0;       ///< Table 2 "observed latency" — the model's b1

  // Hierarchical (cluster-of-SMPs) parameters: nodes are grouped into boxes
  // of `box_size`; transfers within a box use the intra_* figures (shared
  // memory), transfers between boxes the observed_MBps/latency_s figures
  // through per-box gateway adapters.
  int box_size = 0;  ///< 0 = flat topology (ignored by flat kinds)
  double intra_observed_MBps = 0.0;
  double intra_latency_s = 0.0;

  double bytes_per_second() const noexcept { return observed_MBps * 1e6; }
  double intra_bytes_per_second() const noexcept {
    return intra_observed_MBps * 1e6;
  }

  /// Minimum latency any message can experience on this interconnect — the
  /// parallel engine's conservative lookahead (sim/parallel_engine.hpp): no
  /// cross-node effect can propagate faster than this, so LPs may safely
  /// advance a full window of it.  For hierarchical topologies the intra-box
  /// figure bounds from below when boxes exist.
  double min_latency_s() const noexcept {
    if (kind == Kind::Hierarchical && box_size > 1 && intra_latency_s > 0.0 &&
        intra_latency_s < latency_s) {
      return intra_latency_s;
    }
    return latency_s;
  }
};

/// Abstract transport bound to an Engine.
class NetworkModel {
 public:
  explicit NetworkModel(NetSpec spec) : spec_(std::move(spec)) {}
  virtual ~NetworkModel() = default;
  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  const NetSpec& spec() const noexcept { return spec_; }

  /// Unloaded time for one message (used by the analytic model): b1 + B/a1.
  double unloaded_time(std::size_t bytes) const noexcept {
    return spec_.latency_s +
           static_cast<double>(bytes) / spec_.bytes_per_second();
  }

  /// Awaitable point-to-point transfer; completes when the message is
  /// delivered at `dst`.  Contention per the concrete topology.
  virtual sim::Task<void> transfer(int src, int dst, std::size_t bytes) = 0;

  std::uint64_t messages_sent() const noexcept { return messages_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_total_; }

  /// Overwrites traffic accounting with snapshot values (checkpoint resume).
  void restore_counters(std::uint64_t messages, std::uint64_t bytes) noexcept {
    messages_ = messages;
    bytes_total_ = bytes;
  }

  /// Attaches a fault model (not owned; may be null).  Link degradation
  /// windows scale subsequent transfer times; the daemon variant also draws
  /// stall delays from it.
  void set_fault_model(sim::FaultModel* fault) noexcept { fault_ = fault; }
  sim::FaultModel* fault_model() const noexcept { return fault_; }

 protected:
  void account(std::size_t bytes) noexcept {
    ++messages_;
    bytes_total_ += bytes;
  }

  /// Transfer time at virtual time `now`, including any active degradation
  /// window.  Identical to unloaded_time() when no fault model is attached
  /// (the default), so fault-free runs are bit-for-bit unperturbed.
  double effective_time(std::size_t bytes, double now) const noexcept {
    if (fault_ == nullptr || !fault_->enabled()) return unloaded_time(bytes);
    return spec_.latency_s * fault_->latency_factor(now) +
           static_cast<double>(bytes) /
               (spec_.bytes_per_second() * fault_->bandwidth_factor(now));
  }

 private:
  NetSpec spec_;
  sim::FaultModel* fault_ = nullptr;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_total_ = 0;
};

/// Full-duplex switched fabric: each node has one send and one receive link;
/// a transfer holds src's send link and dst's receive link for its duration.
class SwitchedNetwork final : public NetworkModel {
 public:
  SwitchedNetwork(sim::Engine& engine, NetSpec spec, int nodes);
  sim::Task<void> transfer(int src, int dst, std::size_t bytes) override;

 private:
  sim::Engine* engine_;
  std::vector<std::unique_ptr<sim::Resource>> send_links_;
  std::vector<std::unique_ptr<sim::Resource>> recv_links_;
};

/// Single shared medium: the full per-message cost is paid while holding the
/// bus, so concurrent senders serialize completely.
class SharedBusNetwork final : public NetworkModel {
 public:
  SharedBusNetwork(sim::Engine& engine, NetSpec spec);
  sim::Task<void> transfer(int src, int dst, std::size_t bytes) override;

 private:
  sim::Engine* engine_;
  sim::Resource bus_;
};

/// All messages serialized through one middleware daemon process.
class DaemonNetwork final : public NetworkModel {
 public:
  DaemonNetwork(sim::Engine& engine, NetSpec spec);
  sim::Task<void> transfer(int src, int dst, std::size_t bytes) override;

 private:
  sim::Engine* engine_;
  sim::Resource daemon_;
};

/// Cluster of SMP boxes: intra-box transfers share the box's memory bus;
/// inter-box transfers pass through both boxes' gateway adapters (HIPPI
/// cards) at the slower inter-box rate.
class HierarchicalNetwork final : public NetworkModel {
 public:
  HierarchicalNetwork(sim::Engine& engine, NetSpec spec, int nodes);
  sim::Task<void> transfer(int src, int dst, std::size_t bytes) override;

  int box_of(int node) const noexcept { return node / spec().box_size; }
  int num_boxes() const noexcept {
    return static_cast<int>(buses_.size());
  }
  /// Unloaded time for an intra-box message.
  double intra_unloaded_time(std::size_t bytes) const noexcept {
    return spec().intra_latency_s +
           static_cast<double>(bytes) / spec().intra_bytes_per_second();
  }

 private:
  sim::Engine* engine_;
  std::vector<std::unique_ptr<sim::Resource>> buses_;     ///< per box
  std::vector<std::unique_ptr<sim::Resource>> gateways_;  ///< per box
};

/// Factory dispatching on spec.kind.
std::unique_ptr<NetworkModel> make_network(sim::Engine& engine, NetSpec spec,
                                           int nodes);

}  // namespace opalsim::mach
