// Platform description and its engine-bound instantiation (Machine).
//
// A PlatformSpec is the static datasheet of a parallel machine: node CPU,
// interconnect, and SMP width.  A Machine binds a spec to a simulation
// Engine with a concrete node count; node 0 conventionally hosts the Opal
// client and nodes 1..p the servers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mach/cpu.hpp"
#include "mach/network.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace opalsim::mach {

struct PlatformSpec {
  std::string name;
  CpuSpec cpu;
  NetSpec net;
  /// Processors per node (2 for the twin-Pentium SMP CoPs).  Informational:
  /// the adjusted rate of `cpu` already reflects the node's throughput.
  int smp_width = 1;
  /// Time for a bare synchronization message exchange — the model's b5.
  double sync_time_s = 0.0;
  /// Fault-injection schedule; default-disabled, in which case the machine
  /// behaves bit-for-bit like the fault-free seed model.  Any paper platform
  /// can thus be instantiated "lossy" by filling this in.
  sim::FaultSpec fault;
};

/// Copy of `p` with a fault schedule attached (convenience for sweeps).
inline PlatformSpec with_faults(PlatformSpec p, sim::FaultSpec fault) {
  p.fault = std::move(fault);
  return p;
}

class Machine {
 public:
  Machine(sim::Engine& engine, const PlatformSpec& spec, int nodes);

  const PlatformSpec& spec() const noexcept { return spec_; }
  sim::Engine& engine() noexcept { return *engine_; }
  int num_nodes() const noexcept { return static_cast<int>(cpus_.size()); }

  Cpu& cpu(int node) { return *cpus_.at(node); }
  const Cpu& cpu(int node) const { return *cpus_.at(node); }

  NetworkModel& network() noexcept { return *network_; }
  const NetworkModel& network() const noexcept { return *network_; }

  /// The machine's fault model (always present; disabled when the platform
  /// spec carries no fault schedule).
  sim::FaultModel& fault() noexcept { return fault_; }
  const sim::FaultModel& fault() const noexcept { return fault_; }

  /// Awaitable message transfer between nodes (contention included).
  sim::Task<void> transfer(int src, int dst, std::size_t bytes) {
    return network_->transfer(src, dst, bytes);
  }

 private:
  sim::Engine* engine_;
  PlatformSpec spec_;
  sim::FaultModel fault_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::unique_ptr<NetworkModel> network_;
};

}  // namespace opalsim::mach
