// The five platforms of the paper's §4 study plus the standalone Pentium 200
// used for the §2.6 memory-hierarchy trials.  All numbers are from the
// paper's Tables 1 and 2; see DESIGN.md for how the "adjusted computation
// rate" and intrinsic-cost tables are derived.
#pragma once

#include <vector>

#include "mach/platform.hpp"

namespace opalsim::mach {

/// Cray J90 "Classic" vector SMP — the reference platform.  100 MHz vector
/// CPUs at 80 adjusted MFlop/s; communication through PVM/Sciddle at an
/// observed 3 MB/s and 10 ms latency despite the GB/s crossbar.
PlatformSpec cray_j90();

/// Cray T3E-900 MPP: 450 MHz Alpha nodes, 52 adjusted MFlop/s (its compiler
/// counts 1.63x the J90 flops), MPI at 100 MB/s observed / 12 us latency.
PlatformSpec cray_t3e900();

/// "Slow CoPs": single 200 MHz Pentium Pro nodes on shared 100BaseT
/// Ethernet (3 MB/s observed, 10 ms latency).
PlatformSpec slow_cops();

/// "SMP CoPs": twin 200 MHz Pentium Pro nodes (adjusted 100 MFlop/s per
/// node) with SCI interconnect (15 MB/s observed, 25 us).
PlatformSpec smp_cops();

/// "Fast CoPs": single 400 MHz Pentium Pro nodes with switched Myrinet
/// (30 MB/s observed, 15 us).
PlatformSpec fast_cops();

/// Standalone 200 MHz Pentium PC for the §2.6 memory-hierarchy study
/// (in-cache 1.09x / in-core 1.00x / out-of-core 0.25x).
PlatformSpec pentium200();

/// The machine the Opal developers were actually planning for (§3.1): a
/// cluster of Cray J90 SMPs interconnected by HIPPI, with a clean MPI-style
/// transport instead of the PVM daemon path.  Not part of the paper's §4
/// prediction set; provided for what-if studies.
PlatformSpec hippi_j90_cluster();

/// The same site modelled hierarchically: 8-CPU J90 boxes whose in-box
/// transfers share the crossbar (fast) while box-to-box transfers pass
/// through HIPPI gateway adapters (slower, serialized per box).
PlatformSpec hippi_j90_cluster_hierarchical(int cpus_per_box = 8);

/// The §4 prediction set, in the paper's presentation order:
/// T3E-900, J90, slow CoPs, SMP CoPs, fast CoPs.
std::vector<PlatformSpec> prediction_platforms();

}  // namespace opalsim::mach
