#include "mach/cpu.hpp"

namespace opalsim::mach {

sim::Task<void> Cpu::compute(hpm::OpCounts ops,
                             std::size_t working_set_bytes) {
  const double dt = charge(ops, working_set_bytes);
  co_await engine_->delay(dt);
}

double Cpu::charge(const hpm::OpCounts& ops, std::size_t working_set_bytes) {
  const double dt = spec_.seconds_for(ops, working_set_bytes, vectorized_);
  counter_.charge(ops, dt, spec_.clock_hz());
  return dt;
}

}  // namespace opalsim::mach
