#include "ckpt/snapshot.hpp"

#include <cstring>

#include "sim/engine.hpp"
#include "util/binio.hpp"
#include "util/crc32.hpp"
#include "util/fatal.hpp"
#include "util/run_tag.hpp"

namespace opalsim::ckpt {

namespace {

void put_rng(util::BinWriter& w, const RngState& s) {
  for (const std::uint64_t x : s) w.put_u64(x);
}

RngState get_rng(util::BinReader& r) {
  RngState s{};
  for (auto& x : s) x = r.get_u64();
  return s;
}

void put_u32_vec(util::BinWriter& w, const std::vector<std::uint32_t>& xs) {
  w.put_u64(xs.size());
  for (const std::uint32_t x : xs) w.put_u32(x);
}

std::vector<std::uint32_t> get_u32_vec(util::BinReader& r) {
  const std::uint64_t n = r.get_u64();
  if (n > r.remaining() / 4) {
    throw util::DecodeError("ckpt: u32 vector length exceeds buffer");
  }
  std::vector<std::uint32_t> xs(n);
  for (auto& x : xs) x = r.get_u32();
  return xs;
}

void put_metrics(util::BinWriter& w, const opal::RunMetrics& m) {
  w.put_f64(m.par_update);
  w.put_f64(m.par_nbint);
  w.put_f64(m.seq_comp);
  w.put_f64(m.call_upd);
  w.put_f64(m.return_upd);
  w.put_f64(m.call_nbi);
  w.put_f64(m.return_nbi);
  w.put_f64(m.sync);
  w.put_f64(m.idle);
  w.put_f64(m.recovery);
  w.put_f64(m.wall);
  w.put_u64(m.pairs_checked);
  w.put_u64(m.pairs_evaluated);
  w.put_u64(m.list_updates);
  w.put_u64(m.retries);
  w.put_u64(m.timeouts);
  w.put_u64(m.heartbeats);
  w.put_u64(m.failovers);
  w.put_u64(m.servers_failed);
  w.put_u64(m.msgs_dropped);
  w.put_u64(m.msgs_duplicated);
  w.put_u64(m.msgs_corrupted);
}

opal::RunMetrics get_metrics(util::BinReader& r) {
  opal::RunMetrics m;
  m.par_update = r.get_f64();
  m.par_nbint = r.get_f64();
  m.seq_comp = r.get_f64();
  m.call_upd = r.get_f64();
  m.return_upd = r.get_f64();
  m.call_nbi = r.get_f64();
  m.return_nbi = r.get_f64();
  m.sync = r.get_f64();
  m.idle = r.get_f64();
  m.recovery = r.get_f64();
  m.wall = r.get_f64();
  m.pairs_checked = r.get_u64();
  m.pairs_evaluated = r.get_u64();
  m.list_updates = r.get_u64();
  m.retries = r.get_u64();
  m.timeouts = r.get_u64();
  m.heartbeats = r.get_u64();
  m.failovers = r.get_u64();
  m.servers_failed = r.get_u64();
  m.msgs_dropped = r.get_u64();
  m.msgs_duplicated = r.get_u64();
  m.msgs_corrupted = r.get_u64();
  return m;
}

void put_physics(util::BinWriter& w, const opal::SimResult& p) {
  w.put_f64(p.evdw);
  w.put_f64(p.ecoul);
  w.put_f64(p.bonded.bond);
  w.put_f64(p.bonded.angle);
  w.put_f64(p.bonded.dihedral);
  w.put_f64(p.bonded.improper);
  w.put_f64(p.kinetic);
  w.put_f64(p.temperature);
  w.put_f64(p.pressure);
  w.put_f64(p.volume);
}

opal::SimResult get_physics(util::BinReader& r) {
  opal::SimResult p;
  p.evdw = r.get_f64();
  p.ecoul = r.get_f64();
  p.bonded.bond = r.get_f64();
  p.bonded.angle = r.get_f64();
  p.bonded.dihedral = r.get_f64();
  p.bonded.improper = r.get_f64();
  p.kinetic = r.get_f64();
  p.temperature = r.get_f64();
  p.pressure = r.get_f64();
  p.volume = r.get_f64();
  return p;
}

}  // namespace

std::vector<std::uint8_t> encode(const RunSnapshot& s) {
  util::BinWriter w;
  for (const char c : kMagic) w.put_u8(static_cast<std::uint8_t>(c));
  w.put_u32(kVersion);

  w.put_u64(s.config_fingerprint);

  w.put_f64(s.now);
  w.put_u64(s.next_event_seq);
  w.put_u64(s.events_processed);
  w.put_u64(s.q_pushes);
  w.put_u64(s.q_pops);
  w.put_u64(s.q_cancels);
  w.put_u64(s.q_peak);
  w.put_u64(s.lp_clocks.size());
  for (const LpClockSnap& c : s.lp_clocks) {
    w.put_u32(c.lp);
    w.put_f64(c.now);
    w.put_u64(c.next_seq);
    w.put_u64(c.processed);
  }

  w.put_i32(s.step);
  w.put_f64(s.t_start);
  w.put_bool(s.force_update);
  w.put_f64_vec(s.positions);
  w.put_f64_vec(s.velocities);
  w.put_f64_vec(s.update_coords);

  w.put_f64(s.min_step_size);
  w.put_bool(s.min_has_prev);
  w.put_f64(s.min_prev_energy);
  w.put_f64_vec(s.min_prev_pos);
  w.put_f64_vec(s.min_prev_grad);
  w.put_u64(s.min_accepted);
  w.put_u64(s.min_rejected);

  put_physics(w, s.physics);
  put_metrics(w, s.metrics);

  w.put_u64(s.failover_epoch);
  w.put_u64(s.assignment.size());
  for (const auto& a : s.assignment) put_u32_vec(w, a);

  w.put_u64(s.servers.size());
  for (const ServerSnap& sv : s.servers) {
    put_u32_vec(w, sv.domain);
    put_u32_vec(w, sv.active);
    w.put_bool(sv.materialized);
    w.put_u64(sv.pairs_checked);
    w.put_u64(sv.pairs_evaluated);
    w.put_u64(sv.adopt_epoch);
  }

  w.put_u64(s.next_send_seq);
  w.put_u64(s.mailboxes.size());
  for (const auto& mb : s.mailboxes) {
    w.put_u64(mb.size());
    for (const MailboxItemSnap& m : mb) {
      w.put_i32(m.src);
      w.put_i32(m.tag);
      w.put_u64(m.seq);
      w.put_u64(m.checksum);
      w.put_bool(m.corrupted);
      w.put_bytes(m.raw);
      w.put_u64(m.payload_bytes);
    }
  }

  w.put_u64(s.alive.size());
  for (const bool a : s.alive) w.put_bool(a);
  put_rng(w, s.jitter_rng);
  w.put_u64(s.rpc_retries);
  w.put_u64(s.rpc_timeouts);
  w.put_u64(s.rpc_heartbeats);
  w.put_u64(s.rpc_stale_discarded);
  w.put_u64(s.rpc_servers_failed);
  w.put_f64(s.rpc_recovery_time_s);
  w.put_u64(s.next_call_id);
  w.put_u64(s.next_probe_id);

  w.put_u64(s.node_faults.size());
  for (const NodeFaultSnap& nf : s.node_faults) {
    w.put_i32(nf.node);
    w.put_f64(nf.t_fail);
  }
  w.put_bool(s.fault_enabled);
  w.put_u64(s.f_seen);
  w.put_u64(s.f_dropped);
  w.put_u64(s.f_duplicated);
  w.put_u64(s.f_corrupted);
  w.put_u64(s.f_stalls);
  put_rng(w, s.message_rng);
  put_rng(w, s.corrupt_rng);
  put_rng(w, s.stall_rng);

  w.put_u64(s.cpus.size());
  for (const CpuSnap& c : s.cpus) {
    w.put_u64(c.add);
    w.put_u64(c.mul);
    w.put_u64(c.div);
    w.put_u64(c.sqrt);
    w.put_u64(c.exp);
    w.put_u64(c.cmp);
    w.put_f64(c.busy_seconds);
    w.put_f64(c.cycles);
  }
  w.put_u64(s.net_messages);
  w.put_u64(s.net_bytes);

  w.put_u64(s.sink_next_seq);

  w.put_u64(s.images_written);
  w.put_u64(s.bytes_written);
  w.put_u64(s.deferred);

  std::vector<std::uint8_t> image = w.take();
  const std::uint32_t crc = util::crc32(image.data(), image.size());
  for (int i = 0; i < 4; ++i) {
    image.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return image;
}

RunSnapshot decode(const std::vector<std::uint8_t>& image) {
  const auto bad = [](const std::string& why) -> RunSnapshot {
    throw util::FatalError("ckpt", "bad checkpoint image: " + why,
                           util::current_run_tag());
  };
  if (image.size() < sizeof(kMagic) + 4 + 4) return bad("truncated header");
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    return bad("magic mismatch");
  }
  // Verify the CRC trailer before interpreting any payload byte.
  const std::size_t body = image.size() - 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(image[body + i]) << (8 * i);
  }
  if (util::crc32(image.data(), body) != stored) return bad("CRC mismatch");

  try {
    util::BinReader r({image.data(), body});
    for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)r.get_u8();
    const std::uint32_t version = r.get_u32();
    if (version != kVersion) {
      return bad("version " + std::to_string(version) + ", expected " +
                 std::to_string(kVersion));
    }

    RunSnapshot s;
    s.config_fingerprint = r.get_u64();

    s.now = r.get_f64();
    s.next_event_seq = r.get_u64();
    s.events_processed = r.get_u64();
    s.q_pushes = r.get_u64();
    s.q_pops = r.get_u64();
    s.q_cancels = r.get_u64();
    s.q_peak = r.get_u64();
    const std::uint64_t n_lp_clocks = r.get_u64();
    s.lp_clocks.reserve(n_lp_clocks);
    for (std::uint64_t i = 0; i < n_lp_clocks; ++i) {
      LpClockSnap c;
      c.lp = r.get_u32();
      c.now = r.get_f64();
      c.next_seq = r.get_u64();
      c.processed = r.get_u64();
      s.lp_clocks.push_back(c);
    }

    s.step = r.get_i32();
    s.t_start = r.get_f64();
    s.force_update = r.get_bool();
    s.positions = r.get_f64_vec();
    s.velocities = r.get_f64_vec();
    s.update_coords = r.get_f64_vec();

    s.min_step_size = r.get_f64();
    s.min_has_prev = r.get_bool();
    s.min_prev_energy = r.get_f64();
    s.min_prev_pos = r.get_f64_vec();
    s.min_prev_grad = r.get_f64_vec();
    s.min_accepted = r.get_u64();
    s.min_rejected = r.get_u64();

    s.physics = get_physics(r);
    s.metrics = get_metrics(r);

    s.failover_epoch = r.get_u64();
    const std::uint64_t na = r.get_u64();
    s.assignment.reserve(na);
    for (std::uint64_t i = 0; i < na; ++i) {
      s.assignment.push_back(get_u32_vec(r));
    }

    const std::uint64_t ns = r.get_u64();
    s.servers.reserve(ns);
    for (std::uint64_t i = 0; i < ns; ++i) {
      ServerSnap sv;
      sv.domain = get_u32_vec(r);
      sv.active = get_u32_vec(r);
      sv.materialized = r.get_bool();
      sv.pairs_checked = r.get_u64();
      sv.pairs_evaluated = r.get_u64();
      sv.adopt_epoch = r.get_u64();
      s.servers.push_back(std::move(sv));
    }

    s.next_send_seq = r.get_u64();
    const std::uint64_t nmb = r.get_u64();
    s.mailboxes.resize(nmb);
    for (auto& mb : s.mailboxes) {
      const std::uint64_t ni = r.get_u64();
      mb.reserve(ni);
      for (std::uint64_t i = 0; i < ni; ++i) {
        MailboxItemSnap m;
        m.src = r.get_i32();
        m.tag = r.get_i32();
        m.seq = r.get_u64();
        m.checksum = r.get_u64();
        m.corrupted = r.get_bool();
        m.raw = r.get_bytes();
        m.payload_bytes = r.get_u64();
        mb.push_back(std::move(m));
      }
    }

    const std::uint64_t nal = r.get_u64();
    s.alive.resize(nal);
    for (std::uint64_t i = 0; i < nal; ++i) s.alive[i] = r.get_bool();
    s.jitter_rng = get_rng(r);
    s.rpc_retries = r.get_u64();
    s.rpc_timeouts = r.get_u64();
    s.rpc_heartbeats = r.get_u64();
    s.rpc_stale_discarded = r.get_u64();
    s.rpc_servers_failed = r.get_u64();
    s.rpc_recovery_time_s = r.get_f64();
    s.next_call_id = r.get_u64();
    s.next_probe_id = r.get_u64();

    const std::uint64_t nnf = r.get_u64();
    s.node_faults.reserve(nnf);
    for (std::uint64_t i = 0; i < nnf; ++i) {
      NodeFaultSnap nf;
      nf.node = r.get_i32();
      nf.t_fail = r.get_f64();
      s.node_faults.push_back(nf);
    }
    s.fault_enabled = r.get_bool();
    s.f_seen = r.get_u64();
    s.f_dropped = r.get_u64();
    s.f_duplicated = r.get_u64();
    s.f_corrupted = r.get_u64();
    s.f_stalls = r.get_u64();
    s.message_rng = get_rng(r);
    s.corrupt_rng = get_rng(r);
    s.stall_rng = get_rng(r);

    const std::uint64_t nc = r.get_u64();
    s.cpus.reserve(nc);
    for (std::uint64_t i = 0; i < nc; ++i) {
      CpuSnap c;
      c.add = r.get_u64();
      c.mul = r.get_u64();
      c.div = r.get_u64();
      c.sqrt = r.get_u64();
      c.exp = r.get_u64();
      c.cmp = r.get_u64();
      c.busy_seconds = r.get_f64();
      c.cycles = r.get_f64();
      s.cpus.push_back(c);
    }
    s.net_messages = r.get_u64();
    s.net_bytes = r.get_u64();

    s.sink_next_seq = r.get_u64();

    s.images_written = r.get_u64();
    s.bytes_written = r.get_u64();
    s.deferred = r.get_u64();

    if (!r.done()) return bad("trailing bytes after payload");
    return s;
  } catch (const util::DecodeError& e) {
    return bad(e.what());
  }
}

void require_fully_committed(const sim::Engine& engine) {
  if (engine.fully_committed()) return;
  util::fatal("ckpt",
              "snapshot requested across an uncommitted horizon: the engine "
              "still holds speculative (rollback-eligible) state; snapshot "
              "boundaries must follow a completed run()/run_until()");
}

}  // namespace opalsim::ckpt
