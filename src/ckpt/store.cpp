#include "ckpt/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/env.hpp"
#include "util/fatal.hpp"

namespace opalsim::ckpt {

namespace {

/// Parsed OPALSIM_CKPT_CRASH directive.
struct CrashPlan {
  enum class Point { kNone, kMidTmp, kAfterTmp, kBetweenRenames };
  Point point = Point::kNone;
  int at_write = 1;  ///< 1-based index of the write that dies
};

CrashPlan crash_plan() {
  CrashPlan plan;
  const auto v = util::env_string("OPALSIM_CKPT_CRASH");
  if (!v) return plan;
  std::string mode = *v;
  const std::size_t at = mode.find('@');
  if (at != std::string::npos) {
    plan.at_write = std::atoi(mode.c_str() + at + 1);
    if (plan.at_write < 1) plan.at_write = 1;
    mode = mode.substr(0, at);
  }
  if (mode == "mid_tmp") plan.point = CrashPlan::Point::kMidTmp;
  else if (mode == "after_tmp") plan.point = CrashPlan::Point::kAfterTmp;
  else if (mode == "between_renames")
    plan.point = CrashPlan::Point::kBetweenRenames;
  return plan;
}

/// Host-process write counter (crash targeting only; a planned crash kills
/// the process, so this never influences virtual-time determinism).
int g_write_count = 0;

[[noreturn]] void die_now() { std::_Exit(42); }

void write_all(int fd, const std::uint8_t* data, std::size_t n,
               const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      util::fatal("ckpt", "write failed for " + path + ": " +
                              std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

WriteResult write_image_atomic(const std::string& path,
                               const std::vector<std::uint8_t>& image) {
  ++g_write_count;
  const CrashPlan plan = crash_plan();
  const bool crash_here =
      plan.point != CrashPlan::Point::kNone && g_write_count == plan.at_write;

  const std::string tmp = path + ".tmp";
  const std::string prev = path + ".prev";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    util::fatal("ckpt",
                "cannot open " + tmp + ": " + std::strerror(errno));
  }
  if (crash_here && plan.point == CrashPlan::Point::kMidTmp) {
    write_all(fd, image.data(), image.size() / 2, tmp);
    die_now();
  }
  write_all(fd, image.data(), image.size(), tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    util::fatal("ckpt", "fsync failed for " + tmp + ": " +
                            std::strerror(errno));
  }
  ::close(fd);
  if (crash_here && plan.point == CrashPlan::Point::kAfterTmp) die_now();

  if (file_exists(path)) {
    if (std::rename(path.c_str(), prev.c_str()) != 0) {
      util::fatal("ckpt", "rename " + path + " -> " + prev + " failed: " +
                              std::strerror(errno));
    }
  }
  if (crash_here && plan.point == CrashPlan::Point::kBetweenRenames) {
    die_now();
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    util::fatal("ckpt", "rename " + tmp + " -> " + path + " failed: " +
                            std::strerror(errno));
  }
  return WriteResult{image.size()};
}

namespace {

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) util::fatal("ckpt", "cannot open checkpoint image " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

RunSnapshot load_snapshot(const std::string& path,
                          std::uint64_t* loaded_bytes) {
  std::string primary_error;
  try {
    const std::vector<std::uint8_t> bytes = read_file_bytes(path);
    RunSnapshot s = decode(bytes);
    if (loaded_bytes != nullptr) *loaded_bytes = bytes.size();
    return s;
  } catch (const std::exception& e) {
    primary_error = e.what();
  }
  const std::string prev = path + ".prev";
  try {
    const std::vector<std::uint8_t> bytes = read_file_bytes(prev);
    RunSnapshot s = decode(bytes);
    if (loaded_bytes != nullptr) *loaded_bytes = bytes.size();
    return s;
  } catch (const std::exception& e) {
    util::fatal("ckpt", "no usable checkpoint image: " + path + " (" +
                            primary_error + "); " + prev + " (" + e.what() +
                            ")");
  }
}

}  // namespace opalsim::ckpt
