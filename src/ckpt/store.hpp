// Atomic checkpoint image storage.
//
// Write protocol (crash-safe at every interleaving):
//   1. write the full image to `<path>.tmp` and fsync it;
//   2. rename the current `<path>` (if any) to `<path>.prev`;
//   3. rename `<path>.tmp` to `<path>`.
//
// A crash mid-(1) leaves a torn .tmp that is never read; a crash between
// (2) and (3) leaves only .prev.  load_snapshot() therefore tries `<path>`
// first and falls back to `<path>.prev` when the primary is missing, torn,
// or fails its CRC — the previous-good image is always recoverable.
//
// Crash injection (exercised by tools/chaos/crash_harness.py and the CI
// chaos shard): when OPALSIM_CKPT_CRASH is set to
//
//   mid_tmp[@N]         _Exit(42) after writing half the .tmp bytes
//   after_tmp[@N]       _Exit(42) after the fsync, before any rename
//   between_renames[@N] _Exit(42) after <path> -> .prev, before tmp -> <path>
//
// the Nth write_image_atomic call in this process (default: the 1st) dies at
// exactly that point.  _Exit skips atexit/flush — the closest in-process
// stand-in for SIGKILL that still lets the harness target a precise phase of
// the protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "util/domains.hpp"

namespace opalsim::ckpt {

/// Bytes the last successful write_image_atomic persisted (for accounting).
struct WriteResult {
  std::uint64_t bytes = 0;
};

/// Atomically replaces `path` with `image` per the protocol above.  Throws
/// util::FatalError (subsystem "ckpt") on I/O failure.
HOST_ONLY WriteResult write_image_atomic(const std::string& path,
                               const std::vector<std::uint8_t>& image);

/// Loads and decodes `path`, falling back to `path` + ".prev" when the
/// primary image is missing or invalid.  Throws util::FatalError when
/// neither decodes.  On success *loaded_bytes (when non-null) receives the
/// byte size of the image actually used.
HOST_ONLY RunSnapshot load_snapshot(const std::string& path,
                          std::uint64_t* loaded_bytes = nullptr);

}  // namespace opalsim::ckpt
