// Checkpoint image contents and binary encoding.
//
// A RunSnapshot captures everything that determines a ParallelOpal run's
// future at a quiescent step boundary (engine queue empty, every coroutine
// parked on a mailbox or at the step-loop top): virtual clock and event
// sequencing, every RNG stream, MD state, middleware protocol state,
// fault-model dynamic state, and all metrics accumulators.  Restoring it
// into a freshly rebuilt engine/task graph continues the run such that every
// output — sweep CSV, metrics JSON, trace tail — is byte-identical to an
// uninterrupted execution (the ctest gate and tools/chaos/crash_harness.py
// both enforce this).
//
// Wire format (see DESIGN.md, "Checkpoint/restart"):
//
//   8 bytes   magic "OPALCKPT"
//   u32       version (kVersion)
//   payload   fields below, little-endian fixed-width (util/binio.hpp)
//   u32       CRC-32 over all preceding bytes (util/crc32.hpp)
//
// decode() verifies magic, version and CRC and throws util::FatalError
// (subsystem "ckpt") on any mismatch — a torn or corrupted image can never
// be half-applied.  This module deliberately speaks only primitives
// (vectors of doubles/ints), so it layers on util alone; the opal layer owns
// the translation to/from its own types.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "opal/metrics.hpp"

namespace opalsim::sim {
class Engine;
}  // namespace opalsim::sim

namespace opalsim::ckpt {

inline constexpr char kMagic[8] = {'O', 'P', 'A', 'L', 'C', 'K', 'P', 'T'};
inline constexpr std::uint32_t kVersion = 2;

/// One undelivered message parked in a task mailbox (stale duplicated
/// replies can outlive a round in fault-tolerant mode).
struct MailboxItemSnap {
  std::int32_t src = -1;
  std::int32_t tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t checksum = 0;
  bool corrupted = false;
  std::vector<std::uint8_t> raw;      ///< PackBuffer encoded bytes
  std::uint64_t payload_bytes = 0;    ///< PackBuffer::byte_size()
};

/// One server's pair-list state.  Pairs are flattened (i0,j0,i1,j1,...);
/// lazy caches (membership index, cell grid, Verlet list) are not stored —
/// both host paths rebuild the identical active list on demand.
struct ServerSnap {
  std::vector<std::uint32_t> domain;
  std::vector<std::uint32_t> active;
  bool materialized = false;
  std::uint64_t pairs_checked = 0;
  std::uint64_t pairs_evaluated = 0;
  std::uint64_t adopt_epoch = 0;
};

/// One node's HPM counter (architecture-neutral op mix + busy accounting).
struct CpuSnap {
  std::uint64_t add = 0, mul = 0, div = 0, sqrt = 0, exp = 0, cmp = 0;
  double busy_seconds = 0.0;
  double cycles = 0.0;
};

/// A scheduled or dynamically recorded node death.
struct NodeFaultSnap {
  std::int32_t node = -1;
  double t_fail = 0.0;
};

using RngState = std::array<std::uint64_t, 4>;

/// Clock/sequencing state of one extra logical process of the parallel
/// engine (sim/parallel_engine.hpp).  Activity-gated at capture: an LP that
/// never ran an event is omitted, so a parallel run of a coroutine-only
/// program (all work on the base LP) snapshots byte-identically to the
/// serial engine — the cross-engine resume matrix depends on it.
struct LpClockSnap {
  std::uint32_t lp = 0;
  double now = 0.0;
  std::uint64_t next_seq = 0;
  std::uint64_t processed = 0;
};

struct RunSnapshot {
  /// Identity of the run configuration this image belongs to; resuming
  /// under a different config is refused.
  std::uint64_t config_fingerprint = 0;

  // -- engine ---------------------------------------------------------------
  double now = 0.0;
  std::uint64_t next_event_seq = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t q_pushes = 0, q_pops = 0, q_cancels = 0, q_peak = 0;
  /// Extra-LP clocks (parallel engine; empty for serial or LP-idle runs).
  std::vector<LpClockSnap> lp_clocks;

  // -- client progress ------------------------------------------------------
  std::int32_t step = 0;       ///< next step index to execute
  double t_start = 0.0;        ///< engine.now() at client start
  bool force_update = false;
  std::vector<double> positions;      ///< flat 3n coordinates
  std::vector<double> velocities;     ///< flat 3n
  std::vector<double> update_coords;  ///< coordinates of last scheduled update

  // -- minimizer ------------------------------------------------------------
  double min_step_size = 0.0;
  bool min_has_prev = false;
  double min_prev_energy = 0.0;
  std::vector<double> min_prev_pos;   ///< flat 3n (empty when !has_prev)
  std::vector<double> min_prev_grad;
  std::uint64_t min_accepted = 0;
  std::uint64_t min_rejected = 0;

  // -- accumulated results --------------------------------------------------
  opal::SimResult physics;
  opal::RunMetrics metrics;

  // -- failover -------------------------------------------------------------
  std::uint64_t failover_epoch = 0;
  /// Client-side pair assignment (fault-tolerant mode; empty otherwise).
  std::vector<std::vector<std::uint32_t>> assignment;

  // -- servers --------------------------------------------------------------
  std::vector<ServerSnap> servers;

  // -- pvm ------------------------------------------------------------------
  std::uint64_t next_send_seq = 1;
  /// Per-tid undelivered mailbox items (index = tid; servers 0..p-1, client p).
  std::vector<std::vector<MailboxItemSnap>> mailboxes;

  // -- sciddle --------------------------------------------------------------
  std::vector<bool> alive;
  RngState jitter_rng{};
  std::uint64_t rpc_retries = 0, rpc_timeouts = 0, rpc_heartbeats = 0;
  std::uint64_t rpc_stale_discarded = 0, rpc_servers_failed = 0;
  double rpc_recovery_time_s = 0.0;
  std::uint64_t next_call_id = 1;
  std::uint64_t next_probe_id = 1;

  // -- fault model ----------------------------------------------------------
  std::vector<NodeFaultSnap> node_faults;
  bool fault_enabled = false;
  std::uint64_t f_seen = 0, f_dropped = 0, f_duplicated = 0, f_corrupted = 0,
                f_stalls = 0;
  RngState message_rng{}, corrupt_rng{}, stall_rng{};

  // -- machine --------------------------------------------------------------
  std::vector<CpuSnap> cpus;  ///< index = node (0 = client)
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;

  // -- observability --------------------------------------------------------
  std::uint64_t sink_next_seq = 0;  ///< 0 when the run is untraced

  // -- checkpoint accounting ------------------------------------------------
  std::uint64_t images_written = 0;  ///< including the image holding this
  std::uint64_t bytes_written = 0;   ///< including the image holding this
  std::uint64_t deferred = 0;        ///< boundaries skipped (not quiescent)
};

/// Encodes a snapshot into a complete image (magic + version + payload +
/// CRC trailer).
std::vector<std::uint8_t> encode(const RunSnapshot& s);

/// Decodes and verifies an image; throws util::FatalError (subsystem
/// "ckpt") on bad magic, version mismatch, CRC failure, or truncation.
RunSnapshot decode(const std::vector<std::uint8_t>& image);

/// Commit-horizon gate: refuses (util::FatalError, subsystem "ckpt") to
/// capture state from an engine that still holds uncommitted speculative
/// work — a snapshot taken mid-speculation could encode state a later
/// rollback revokes.  Always passes on the serial and conservative engines
/// (fully_committed() is constitutively true there); the optimistic engine
/// is fully committed exactly at run()/run_until() boundaries.
void require_fully_committed(const sim::Engine& engine);

}  // namespace opalsim::ckpt
